// Package metrics accumulates the evaluation metrics of §4.2: aggregate
// power savings (vs. a no-management baseline), performance loss, and power
// budget violations at the server, enclosure, and group levels.
//
// Violations are measured against the *static* budgets CAP_LOC / CAP_ENC /
// CAP_GRP and reported as the percentage of observation intervals in
// violation (powered server-ticks for the SM level — an off server has no
// controller interval, so it is excluded from the denominator). Peak power savings are not
// reported as a metric because, as the paper notes, they are configuration
// inputs (the budget headrooms), not outcomes.
package metrics

import (
	"fmt"
	"math"

	"nopower/internal/cluster"
	"nopower/internal/state"
)

// Collector folds per-tick cluster observations into running totals.
type Collector struct {
	ticks int

	energy      float64 // Σ group power (W·tick)
	demandWork  float64
	delivered   float64
	onServerSum int

	violSM     int // server-ticks over CAP_LOC
	serverObs  int // ViolSM denominator: powered server-ticks (§4.2 controller intervals)
	violEM     int // enclosure-ticks over CAP_ENC
	encObs     int
	violGM     int // ticks over CAP_GRP
	grpObs     int
	peakPower  float64
	violSMMass float64 // Σ overshoot (W·tick), magnitude telemetry
}

// Observe folds one advanced tick of the cluster into the collector. It is a
// convenience wrapper over ObserveStats using the cluster's own per-tick
// aggregate — inside the simulator the engine shares one Stats() pass between
// the collector, the live gauges, and the series recorder.
func (c *Collector) Observe(cl *cluster.Cluster) {
	c.ObserveStats(cl.Stats())
}

// ObserveStats folds one tick's fleet aggregate into the collector.
//
// A powered-off server has no SM controller interval: FleetStats counts only
// powered servers in ServersOn, so the §4.2 violation-rate denominator
// ("percentage of controller intervals in violation") is not diluted.
func (c *Collector) ObserveStats(st cluster.FleetStats) {
	c.ticks++
	c.energy += st.GroupPower
	c.demandWork += st.DemandWork
	c.delivered += st.DeliveredWork
	if st.GroupPower > c.peakPower {
		c.peakPower = st.GroupPower
	}

	c.serverObs += st.ServersOn
	c.violSM += st.ViolSM
	c.violSMMass += st.ViolSMWatts
	c.encObs += st.EnclosureObs
	c.violEM += st.ViolEM
	c.grpObs++
	if st.ViolGM {
		c.violGM++
	}
	c.onServerSum += st.ServersOn
}

// CollectorState mirrors the collector's unexported accumulators for the
// checkpoint subsystem (DESIGN.md §10). All counters are exact — integers
// and float64 sums — so a restored collector finalizes bit-identically.
type CollectorState struct {
	Ticks       int
	Energy      float64
	DemandWork  float64
	Delivered   float64
	OnServerSum int
	ViolSM      int
	ServerObs   int
	ViolEM      int
	EncObs      int
	ViolGM      int
	GrpObs      int
	PeakPower   float64
	ViolSMMass  float64
}

// State implements the simulator's Snapshotter interface (structurally —
// this package cannot import sim, which imports it).
func (c *Collector) State() ([]byte, error) {
	return state.Marshal(CollectorState{
		Ticks: c.ticks, Energy: c.energy, DemandWork: c.demandWork,
		Delivered: c.delivered, OnServerSum: c.onServerSum,
		ViolSM: c.violSM, ServerObs: c.serverObs, ViolEM: c.violEM, EncObs: c.encObs,
		ViolGM: c.violGM, GrpObs: c.grpObs, PeakPower: c.peakPower, ViolSMMass: c.violSMMass,
	})
}

// Restore implements the simulator's Snapshotter interface.
func (c *Collector) Restore(data []byte) error {
	var st CollectorState
	if err := state.Unmarshal(data, &st); err != nil {
		return err
	}
	c.ticks, c.energy, c.demandWork, c.delivered = st.Ticks, st.Energy, st.DemandWork, st.Delivered
	c.onServerSum = st.OnServerSum
	c.violSM, c.serverObs, c.violEM, c.encObs = st.ViolSM, st.ServerObs, st.ViolEM, st.EncObs
	c.violGM, c.grpObs, c.peakPower, c.violSMMass = st.ViolGM, st.GrpObs, st.PeakPower, st.ViolSMMass
	return nil
}

// Result is the final evaluation summary of one run.
type Result struct {
	// Ticks is the number of observed intervals.
	Ticks int
	// AvgPower is the mean group draw in Watts.
	AvgPower float64
	// PeakPower is the highest observed group draw in Watts.
	PeakPower float64
	// PowerSavings is 1 − AvgPower/baseline, in [ −∞, 1 ]; zero when no
	// baseline was supplied.
	PowerSavings float64
	// PerfLoss is 1 − delivered/demanded work.
	PerfLoss float64
	// ViolSM, ViolEM, ViolGM are violation rates (fraction of observation
	// intervals over the static budget at each level).
	ViolSM, ViolEM, ViolGM float64
	// ViolSMWatts is the mean overshoot magnitude per violating server-tick.
	ViolSMWatts float64
	// AvgServersOn is the mean number of powered servers.
	AvgServersOn float64
}

// Finalize computes the summary. baselineAvgPower <= 0 skips the savings
// metric.
func (c *Collector) Finalize(baselineAvgPower float64) Result {
	r := Result{Ticks: c.ticks, PeakPower: c.peakPower}
	if c.ticks == 0 {
		return r
	}
	r.AvgPower = c.energy / float64(c.ticks)
	if baselineAvgPower > 0 {
		r.PowerSavings = 1 - r.AvgPower/baselineAvgPower
	}
	if c.demandWork > 0 {
		r.PerfLoss = 1 - c.delivered/c.demandWork
		if r.PerfLoss < 0 && r.PerfLoss > -1e-12 {
			r.PerfLoss = 0
		}
	}
	if c.serverObs > 0 {
		r.ViolSM = float64(c.violSM) / float64(c.serverObs)
	}
	if c.encObs > 0 {
		r.ViolEM = float64(c.violEM) / float64(c.encObs)
	}
	if c.grpObs > 0 {
		r.ViolGM = float64(c.violGM) / float64(c.grpObs)
	}
	if c.violSM > 0 {
		r.ViolSMWatts = c.violSMMass / float64(c.violSM)
	}
	r.AvgServersOn = float64(c.onServerSum) / float64(c.ticks)
	return r
}

// EnergyKWh converts the run's average power into energy, given the
// real-time duration of one tick in seconds. The paper motivates average
// power reduction with electricity cost ("many data centers reporting
// millions of dollars for annual usage").
func (r Result) EnergyKWh(tickSeconds float64) float64 {
	if tickSeconds <= 0 {
		return 0
	}
	hours := float64(r.Ticks) * tickSeconds / 3600
	return r.AvgPower * hours / 1000
}

// ElectricityCost prices the run's energy at a $/kWh rate.
func (r Result) ElectricityCost(tickSeconds, dollarsPerKWh float64) float64 {
	return r.EnergyKWh(tickSeconds) * dollarsPerKWh
}

// AnnualSavingsUSD extrapolates the measured savings rate to a year of
// operation: (baseline − achieved) average Watts priced per kWh.
func AnnualSavingsUSD(baselineAvgW, achievedAvgW, dollarsPerKWh float64) float64 {
	deltaKW := (baselineAvgW - achievedAvgW) / 1000
	return deltaKW * 24 * 365 * dollarsPerKWh
}

// String renders the result compactly for logs and CLI output.
func (r Result) String() string {
	return fmt.Sprintf(
		"avg %.0fW peak %.0fW save %.1f%% perf-loss %.1f%% viol SM/EM/GM %.1f/%.1f/%.1f%% on %.1f",
		r.AvgPower, r.PeakPower, 100*r.PowerSavings, 100*r.PerfLoss,
		100*r.ViolSM, 100*r.ViolEM, 100*r.ViolGM, r.AvgServersOn)
}

// Valid sanity-checks a result's ranges (used by integration tests).
func (r Result) Valid() error {
	checks := []struct {
		name string
		v    float64
		lo   float64
		hi   float64
	}{
		{"PerfLoss", r.PerfLoss, 0, 1},
		{"ViolSM", r.ViolSM, 0, 1},
		{"ViolEM", r.ViolEM, 0, 1},
		{"ViolGM", r.ViolGM, 0, 1},
	}
	for _, c := range checks {
		if math.IsNaN(c.v) || c.v < c.lo-1e-9 || c.v > c.hi+1e-9 {
			return fmt.Errorf("metrics: %s = %v out of [%v,%v]", c.name, c.v, c.lo, c.hi)
		}
	}
	if r.AvgPower < 0 || r.PeakPower < r.AvgPower-1e-9 {
		return fmt.Errorf("metrics: power stats inconsistent: avg %v peak %v", r.AvgPower, r.PeakPower)
	}
	return nil
}
