package metrics

import (
	"bytes"
	"strings"
	"testing"

	"nopower/internal/testutil"
)

// fakeEval is a deterministic stand-in facility model.
func fakeEval(k int, itW float64) (float64, float64, float64, float64) {
	return itW * 1.5, 1.5, itW * 0.4, 20 + float64(k%7)
}

func TestSeriesFacilityColumnsRecorded(t *testing.T) {
	cl := testutil.StandaloneCluster(t, 3, 100, 0.5)
	var s Series
	s.AttachFacility(fakeEval)
	for k := 0; k < 20; k++ {
		cl.Advance(k)
		s.Observe(k, cl)
	}
	if s.Len() != 20 {
		t.Fatalf("recorded %d samples", s.Len())
	}
	if len(s.FacilityW) != 20 || len(s.PUE) != 20 || len(s.CoolingW) != 20 || len(s.OutsideC) != 20 {
		t.Fatalf("facility columns %d/%d/%d/%d, want 20 each",
			len(s.FacilityW), len(s.PUE), len(s.CoolingW), len(s.OutsideC))
	}
	for i := range s.Ticks {
		if s.FacilityW[i] != s.PowerW[i]*1.5 {
			t.Fatalf("sample %d: facility %v != 1.5× power %v", i, s.FacilityW[i], s.PowerW[i])
		}
		if s.PUE[i] != 1.5 {
			t.Fatalf("sample %d: PUE %v", i, s.PUE[i])
		}
	}
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(buf.String(), "\n", 2)[0]
	if !strings.HasSuffix(head, "facility_w,pue,cooling_w,outside_c") {
		t.Errorf("facility header missing: %q", head)
	}
}

// Without an attached model the columns stay empty and the CSV keeps the
// pre-facility format byte-for-byte.
func TestSeriesWithoutFacilityUnchanged(t *testing.T) {
	cl := testutil.StandaloneCluster(t, 3, 100, 0.5)
	var s Series
	for k := 0; k < 10; k++ {
		cl.Advance(k)
		s.Observe(k, cl)
	}
	if len(s.FacilityW) != 0 {
		t.Fatalf("facility column recorded without a model: %d samples", len(s.FacilityW))
	}
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(buf.String(), "\n", 2)[0]
	if strings.Contains(head, "facility") || strings.Contains(head, "pue") {
		t.Errorf("facility columns leaked into non-facility CSV: %q", head)
	}
}

// Restore overwrites the recorded columns but must preserve the attached
// facility hook (funcs don't travel in snapshots): a resumed series keeps
// recording facility samples.
func TestSeriesRestorePreservesFacilityHook(t *testing.T) {
	cl := testutil.StandaloneCluster(t, 3, 200, 0.5)
	var orig Series
	orig.AttachFacility(fakeEval)
	for k := 0; k < 15; k++ {
		cl.Advance(k)
		orig.Observe(k, cl)
	}
	blob, err := orig.State()
	if err != nil {
		t.Fatal(err)
	}
	var resumed Series
	resumed.AttachFacility(fakeEval)
	if err := resumed.Restore(blob); err != nil {
		t.Fatal(err)
	}
	for k := 15; k < 30; k++ {
		cl.Advance(k)
		orig.Observe(k, cl)
		resumed.Observe(k, cl)
	}
	if len(resumed.FacilityW) != 30 {
		t.Fatalf("resumed series has %d facility samples, want 30 (hook lost on Restore?)", len(resumed.FacilityW))
	}
	if !orig.BitEqual(&resumed) {
		t.Error("resumed series not bit-identical to the uninterrupted one")
	}
}

// BitEqual covers the facility columns: flipping one bit in any of them must
// break equality.
func TestSeriesBitEqualCoversFacility(t *testing.T) {
	build := func() *Series {
		cl := testutil.StandaloneCluster(t, 2, 50, 0.5)
		var s Series
		s.AttachFacility(fakeEval)
		for k := 0; k < 10; k++ {
			cl.Advance(k)
			s.Observe(k, cl)
		}
		return &s
	}
	a := build()
	for name, col := range map[string][]float64{
		"facility_w": a.FacilityW, "pue": a.PUE, "cooling_w": a.CoolingW, "outside_c": a.OutsideC,
	} {
		b := build()
		old := col[3]
		col[3] = old + 1e-9
		if a.BitEqual(b) {
			t.Errorf("BitEqual ignored a %s perturbation", name)
		}
		col[3] = old
		if !a.BitEqual(b) {
			t.Fatalf("series not equal after restoring %s", name)
		}
	}
}
