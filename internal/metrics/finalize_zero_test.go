package metrics

import (
	"math"
	"testing"

	"nopower/internal/cluster"
)

// resultFloats lists every float field of a Result for NaN auditing.
func resultFloats(r Result) map[string]float64 {
	return map[string]float64{
		"AvgPower": r.AvgPower, "PeakPower": r.PeakPower,
		"PowerSavings": r.PowerSavings, "PerfLoss": r.PerfLoss,
		"ViolSM": r.ViolSM, "ViolEM": r.ViolEM, "ViolGM": r.ViolGM,
		"ViolSMWatts": r.ViolSMWatts, "AvgServersOn": r.AvgServersOn,
	}
}

// TestFinalizeZeroObservations locks in the degenerate-denominator contract:
// every rate whose observation count is zero finalizes to a defined zero,
// never NaN — a collector that saw no ticks, an all-off fleet with no
// powered server intervals, a topology with no enclosures, and a run with
// no demanded work are all legitimate runs, not errors.
func TestFinalizeZeroObservations(t *testing.T) {
	cases := []struct {
		name    string
		observe func(c *Collector)
		want    map[string]float64 // fields with specific expected values
	}{
		{
			name:    "no ticks",
			observe: func(c *Collector) {},
			want: map[string]float64{"AvgPower": 0, "PeakPower": 0, "PowerSavings": 0,
				"PerfLoss": 0, "ViolSM": 0, "ViolEM": 0, "ViolGM": 0,
				"ViolSMWatts": 0, "AvgServersOn": 0},
		},
		{
			name: "all-off fleet (serverObs = 0, no demand)",
			observe: func(c *Collector) {
				for i := 0; i < 5; i++ {
					c.ObserveStats(cluster.FleetStats{Tick: i, GroupPower: 40,
						ServersOn: 0, EnclosureObs: 2})
				}
			},
			want: map[string]float64{"AvgPower": 40, "PerfLoss": 0, "ViolSM": 0,
				"ViolSMWatts": 0, "AvgServersOn": 0},
		},
		{
			name: "no enclosures (encObs = 0)",
			observe: func(c *Collector) {
				for i := 0; i < 5; i++ {
					c.ObserveStats(cluster.FleetStats{Tick: i, GroupPower: 500,
						ServersOn: 4, DemandWork: 2, DeliveredWork: 2})
				}
			},
			want: map[string]float64{"ViolEM": 0, "PerfLoss": 0, "AvgServersOn": 4},
		},
		{
			name: "violations observed but none hit (violSM = 0)",
			observe: func(c *Collector) {
				c.ObserveStats(cluster.FleetStats{GroupPower: 300, ServersOn: 3,
					EnclosureObs: 1, DemandWork: 1, DeliveredWork: 1})
			},
			want: map[string]float64{"ViolSM": 0, "ViolEM": 0, "ViolGM": 0, "ViolSMWatts": 0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var c Collector
			tc.observe(&c)
			// baseline 0 (not supplied) is itself a degenerate denominator.
			r := c.Finalize(0)
			for name, v := range resultFloats(r) {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("%s = %v, want a finite value", name, v)
				}
			}
			got := resultFloats(r)
			for name, want := range tc.want {
				if got[name] != want {
					t.Errorf("%s = %v, want %v", name, got[name], want)
				}
			}
			if err := r.Valid(); err != nil {
				t.Errorf("Valid() = %v on a degenerate but legitimate run", err)
			}
		})
	}
}
