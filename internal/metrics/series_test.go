package metrics

import (
	"bytes"
	"strings"
	"testing"

	"nopower/internal/testutil"
)

func TestSeriesObserveAndCSV(t *testing.T) {
	cl := testutil.StandaloneCluster(t, 2, 10, 1.0) // violating (100 W > 90 W)
	var s Series
	for k := 0; k < 5; k++ {
		cl.Advance(k)
		s.Observe(k, cl)
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.ViolSM[0] != 2 {
		t.Errorf("ViolSM[0] = %d, want 2", s.ViolSM[0])
	}
	if s.ServersOn[0] != 2 {
		t.Errorf("ServersOn[0] = %d", s.ServersOn[0])
	}
	if s.PowerW[0] != cl.GroupPower {
		t.Errorf("PowerW[0] = %v", s.PowerW[0])
	}
	if s.TempProxy[0] <= 0 {
		t.Errorf("group overage = %v, want positive (200 W vs 160 W cap)", s.TempProxy[0])
	}

	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("%d CSV lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "tick,power_w") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,200.00,2,2,") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestSeriesStride(t *testing.T) {
	cl := testutil.StandaloneCluster(t, 1, 30, 0.2)
	s := Series{Stride: 10}
	for k := 0; k < 30; k++ {
		cl.Advance(k)
		s.Observe(k, cl)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3 (ticks 0, 10, 20)", s.Len())
	}
}
