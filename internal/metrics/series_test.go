package metrics

import (
	"bytes"
	"strings"
	"testing"

	"nopower/internal/testutil"
)

func TestSeriesObserveAndCSV(t *testing.T) {
	cl := testutil.StandaloneCluster(t, 2, 10, 1.0) // violating (100 W > 90 W)
	var s Series
	for k := 0; k < 5; k++ {
		cl.Advance(k)
		s.Observe(k, cl)
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.ViolSM[0] != 2 {
		t.Errorf("ViolSM[0] = %d, want 2", s.ViolSM[0])
	}
	if s.ServersOn[0] != 2 {
		t.Errorf("ServersOn[0] = %d", s.ServersOn[0])
	}
	if s.PowerW[0] != cl.GroupPower {
		t.Errorf("PowerW[0] = %v", s.PowerW[0])
	}
	if s.TempProxy[0] <= 0 {
		t.Errorf("group overage = %v, want positive (200 W vs 160 W cap)", s.TempProxy[0])
	}

	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("%d CSV lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "tick,power_w") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,200.00,2,2,") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestSeriesStride(t *testing.T) {
	cl := testutil.StandaloneCluster(t, 1, 30, 0.2)
	s := Series{Stride: 10}
	for k := 0; k < 30; k++ {
		cl.Advance(k)
		s.Observe(k, cl)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3 (ticks 0, 10, 20)", s.Len())
	}
}

// TestSeriesStrideSemantics pins the documented contract: 0 and 1 both mean
// every tick, k%Stride==0 selects the kept ticks, and tick 0 is always the
// first sample for any stride.
func TestSeriesStrideSemantics(t *testing.T) {
	run := func(stride, ticks int) *Series {
		cl := testutil.StandaloneCluster(t, 1, ticks, 0.2)
		s := &Series{Stride: stride}
		for k := 0; k < ticks; k++ {
			cl.Advance(k)
			s.Observe(k, cl)
		}
		return s
	}
	if got := run(0, 7).Len(); got != 7 {
		t.Errorf("Stride 0: %d samples, want 7 (every tick)", got)
	}
	if got := run(1, 7).Len(); got != 7 {
		t.Errorf("Stride 1: %d samples, want 7 (every tick)", got)
	}
	// Stride larger than the run still records tick 0: ceil(7/100) = 1.
	s := run(100, 7)
	if s.Len() != 1 || s.Ticks[0] != 0 {
		t.Errorf("Stride 100: ticks %v, want [0]", s.Ticks)
	}
	// Non-divisible length: ceil(7/3) = 3 samples at ticks 0, 3, 6.
	s = run(3, 7)
	if s.Len() != 3 || s.Ticks[0] != 0 || s.Ticks[1] != 3 || s.Ticks[2] != 6 {
		t.Errorf("Stride 3: ticks %v, want [0 3 6]", s.Ticks)
	}
}

// TestSeriesHeadroomColumns checks the per-level budget-headroom series and
// their CSV columns. The standalone fixture has no enclosures, so the
// enclosure headroom records the documented empty-level value of 0.
func TestSeriesHeadroomColumns(t *testing.T) {
	cl := testutil.StandaloneCluster(t, 2, 10, 1.0) // overloaded: negative headroom
	var s Series
	for k := 0; k < 3; k++ {
		cl.Advance(k)
		s.Observe(k, cl)
	}
	if got, want := s.HeadroomGrp[0], cl.StaticCapGrp-cl.GroupPower; got != want {
		t.Errorf("HeadroomGrp[0] = %v, want %v", got, want)
	}
	if s.HeadroomGrp[0] >= 0 {
		t.Errorf("HeadroomGrp[0] = %v, want negative (violating fixture)", s.HeadroomGrp[0])
	}
	if len(cl.Enclosures) == 0 && s.HeadroomEnc[0] != 0 {
		t.Errorf("HeadroomEnc[0] = %v, want 0 with no enclosures", s.HeadroomEnc[0])
	}
	wantLoc := cl.StaticCap(0) - cl.Power(0)
	for i := 1; i < cl.NumServers(); i++ {
		if h := cl.StaticCap(i) - cl.Power(i); h < wantLoc {
			wantLoc = h
		}
	}
	if s.HeadroomLoc[0] != wantLoc {
		t.Errorf("HeadroomLoc[0] = %v, want %v (tightest server)", s.HeadroomLoc[0], wantLoc)
	}

	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	if !strings.HasSuffix(header, ",headroom_grp_w,headroom_enc_w,headroom_loc_w") {
		t.Errorf("header = %q, want headroom columns appended", header)
	}
	row := strings.Split(strings.TrimSpace(buf.String()), "\n")[1]
	if got := len(strings.Split(row, ",")); got != len(strings.Split(header, ",")) {
		t.Errorf("row has %d fields, header %d", got, len(strings.Split(header, ",")))
	}
}
