# Developer targets for the nopower reproduction.

GO ?= go

# The observability package carries the tracing/metrics contracts every
# controller depends on; its statement coverage is gated.
COVER_PKG    = ./internal/obs
COVER_MIN    = 80.0
COVER_OUT    = coverage.out

# Perf flight recorder (DESIGN.md §13): bench-json records a comparable
# BENCH_<stamp>.json artifact; verify smoke-compares a default-benchtime
# run of the scale benchmarks against the newest committed baseline. The
# threshold is deliberately loose (200%) because the host is noisy and a
# short run still carries warm-up — the gate catches order-of-magnitude
# rot, not percent drift; `make bench-json` plus
# `npprof compare -max-regress 0.05` is the precise workflow.
BENCH_DIR         ?= bench
BENCH_MAX_REGRESS ?= 2.0
BENCH_BASELINE    ?= $(lastword $(sort $(wildcard $(BENCH_DIR)/BENCH_*.json)))

.PHONY: all build test race bench bench-json bench-serve check fmt vet cover soak verify lint serve-smoke facility-smoke profiles-smoke

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the baseline everything-compiles-and-passes gate: clean
# formatting, vet, a full build, the test suite, and a short smoke of the
# scale benchmarks piped through the flight recorder and compared
# against the committed baseline (so neither the sharded scale path nor
# the bench-json pipeline can rot between full bench runs) — the checks a
# reviewer assumes are green before reading a line.
verify: lint
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	@tmp=$$(mktemp); \
	NPBENCH_PROFILE=1 $(GO) test -run '^$$' -bench 'BenchmarkScale10k|BenchmarkScale100k' . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/npprof record -note "verify smoke" -o $$tmp || exit 1; \
	if [ -n "$(BENCH_BASELINE)" ]; then \
		$(GO) run ./cmd/npprof compare -max-regress $(BENCH_MAX_REGRESS) $(BENCH_BASELINE) $$tmp || { rm -f $$tmp; exit 1; }; \
	else \
		echo "no baseline in $(BENCH_DIR)/ — skipping compare (run make bench-json)"; \
	fi; \
	rm -f $$tmp
	$(MAKE) serve-smoke
	$(MAKE) facility-smoke
	$(MAKE) profiles-smoke

# serve-smoke boots the real npserved binary on a free port, submits a
# small job over HTTP, long-polls the result, and asserts it is bitwise
# identical to an in-process experiments.Run — the cross-process face of
# the determinism contract — then SIGTERMs the daemon and expects a clean
# exit. The harness lives in cmd/npserved/main_test.go.
serve-smoke:
	$(GO) test -count=1 -run 'TestServeSmoke' ./cmd/npserved

# facility-smoke runs E21 at reduced scale with the FM in the stack and
# asserts the facility determinism contract: the sharded run and the
# kill-and-resume run reproduce the serial run bitwise, facility columns
# (PUE, total draw, cooling, outside air) included.
facility-smoke:
	$(GO) test -count=1 -run 'TestFacilityIdentity' ./internal/experiments

# profiles-smoke validates the host-profile registry (every registered
# calibration passes Model.Validate and spans the idle/P-state spectrum)
# and runs E22 at reduced scale: on every heterogeneous fleet mix the
# sharded run and the kill-and-resume run must reproduce the serial run
# bitwise, per-profile decomposition included.
profiles-smoke:
	$(GO) test -count=1 -run 'TestRegistry|TestLookup|TestFrozenGuard' ./internal/model
	$(GO) test -count=1 -run 'TestHeteroIdentity' ./internal/experiments

# bench-serve is the E20 daemon load benchmark: 500 jobs over 8 distinct
# specs per iteration against an in-memory server, reporting p50/p99
# submit-to-done latency as custom metrics (see EXPERIMENTS.md E20).
bench-serve:
	$(GO) test -run '^$$' -bench 'BenchmarkServeLoad' -benchtime 5x -count=1 ./internal/serve

# lint enforces two API boundaries. (1) The columnar store: the per-server
# struct (cluster.Server) and the struct slice (cl.Servers) were removed in
# the struct-of-arrays redesign, and nothing outside internal/cluster may
# grow them back or poke columns directly. The wire-format
# cluster.ServerState (checkpoints) is explicitly allowed. (2) The model
# registry: model.ByName is a deprecated nil-returning shim kept for source
# compatibility — every caller outside internal/model must use
# model.Lookup, which returns an error naming the known profiles.
lint:
	@bad=$$(grep -rn --include='*.go' --exclude-dir=.git -E \
		'cluster\.Server([^A-Za-z0-9_]|$$)|\bcl\.Servers\b' . \
		| grep -v '^\./internal/cluster/' | grep -v 'cluster\.ServerState' || true); \
	if [ -n "$$bad" ]; then \
		echo "removed cluster.Server API referenced outside internal/cluster:"; \
		echo "$$bad"; exit 1; \
	fi
	@bad=$$(grep -rn --include='*.go' --exclude-dir=.git -E 'model\.ByName\(' . \
		| grep -v '^\./internal/model/' || true); \
	if [ -n "$$bad" ]; then \
		echo "deprecated model.ByName used outside internal/model (use model.Lookup):"; \
		echo "$$bad"; exit 1; \
	fi

# race is the gate for the parallel experiment runner and the sharded tick
# engine: every experiment test forces the concurrent worker-pool path, and
# the determinism test runs the sharded engine's worker goroutines under the
# detector, so this catches data races in shared caches, models, the metrics
# pipeline, and the per-tick shard fan-out. verify and the obs coverage
# floor ride along so one target stays the pre-merge gate.
race: verify cover
	$(GO) test -race -count=1 -run 'TestShardDeterminism' ./internal/sim
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$'

# bench-json records the perf flight recorder: the scale and sweep
# benchmarks run with the span profiler attached (phase breakdown +
# imbalance ride along as custom metrics) and the output lands as a
# schema-versioned artifact under $(BENCH_DIR)/. Compare two stamps with
# `go run ./cmd/npprof compare old.json new.json`.
bench-json:
	@mkdir -p $(BENCH_DIR)
	@stamp=$$(date -u +%Y%m%dT%H%M%SZ); \
	NPBENCH_PROFILE=1 $(GO) test -run '^$$' -benchmem \
		-bench 'BenchmarkScale10k|BenchmarkScale100k|BenchmarkParallelSweep' . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/npprof record -note "make bench-json" -o $(BENCH_DIR)/BENCH_$$stamp.json

# soak runs the fault-injection acceptance suite under the race detector:
# every chaos scenario against both stacks with FaultPolicy = degrade, the
# panic sandbox, fail-safe fallback, and chaos event library all exercised.
soak: verify
	$(GO) test -race -count=1 ./internal/chaos ./internal/sim
	$(GO) test -race -count=1 -v -run 'TestChaos' ./internal/experiments

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

# cover enforces a minimum statement coverage on internal/obs — the one
# package whose regressions (a silent tracer, a stuck counter) tests
# elsewhere would not notice.
cover:
	$(GO) test -coverprofile=$(COVER_OUT) $(COVER_PKG)
	@total=$$($(GO) tool cover -func=$(COVER_OUT) | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "internal/obs coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { exit (t+0 >= min+0) ? 0 : 1 }' || \
	{ echo "coverage $$total% below $(COVER_MIN)% floor"; exit 1; }

check: build race
