# Developer targets for the nopower reproduction.

GO ?= go

.PHONY: all build test race bench check fmt vet

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race is the gate for the parallel experiment runner: every experiment
# test forces the concurrent worker-pool path, so this catches data races
# in shared caches, models, and the metrics pipeline.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$'

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

check: build race
