// Customcontroller: extending the architecture with your own controller —
// the extensibility §3.2 promises ("our design [can] be easily extended to
// other classes of controllers"). Anything implementing the two-method
// sim.Controller interface can join the stack; here we add a time-of-day
// curfew manager that tightens the group power budget during a utility's
// peak-tariff window, and the existing GM → EM → SM chain enforces it with
// no changes.
//
// Run with:
//
//	go run ./examples/customcontroller
package main

import (
	"fmt"
	"log"

	"nopower/internal/cluster"
	"nopower/internal/core"
	"nopower/internal/model"
	"nopower/internal/sim"
	"nopower/internal/tracegen"
)

const (
	ticksPerDay = 600
	days        = 3
	ticks       = ticksPerDay * days
)

// curfew is the custom controller: during the peak-tariff window it lowers
// the group budget; off-peak it restores the operator's budget. It never
// touches a P-state or a placement — it speaks the architecture's language,
// budgets, and lets the coordinated chain do the enforcement.
type curfew struct {
	operatorCap float64
	peakCap     float64
}

func (c *curfew) Name() string { return "curfew" }

func (c *curfew) Tick(k int, cl *cluster.Cluster) {
	if c.operatorCap == 0 {
		c.operatorCap = cl.StaticCapGrp
		c.peakCap = 0.55 * c.operatorCap
	}
	dayPos := float64(k%ticksPerDay) / ticksPerDay
	if dayPos > 0.5 && dayPos < 0.75 { // the utility's peak window
		cl.StaticCapGrp = c.peakCap
	} else {
		cl.StaticCapGrp = c.operatorCap
	}
}

func main() {
	traces, err := tracegen.Generate(16, tracegen.Params{
		Ticks: ticks, TicksPerDay: ticksPerDay, Seed: 29, Level: 1.2,
	})
	if err != nil {
		log.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		Standalone: 16,
		Model:      model.BladeA(),
		CapOffGrp:  0.20, CapOffEnc: 0.15, CapOffLoc: 0.10,
		AlphaV: 0.10, AlphaM: 0.10, MigrationTicks: 10,
	}, traces)
	if err != nil {
		log.Fatal(err)
	}

	spec := core.Coordinated()
	spec.Periods.VMC = 150
	engine, _, err := core.Build(cl, spec)
	if err != nil {
		log.Fatal(err)
	}
	// Prepend the custom controller: budgets flow downward within a tick.
	engine.Controllers = append([]sim.Controller{&curfew{}}, engine.Controllers...)

	fmt.Println("16 servers, coordinated stack + custom peak-tariff curfew controller")
	fmt.Println("group power every 50 ticks ('*' = peak-tariff window):")
	over := 0
	for k := 0; k < ticks; k++ {
		if _, err := engine.Run(1); err != nil {
			log.Fatal(err)
		}
		if cl.GroupPower > cl.StaticCapGrp {
			over++
		}
		if k%50 == 49 {
			mark := " "
			dayPos := float64(k%ticksPerDay) / ticksPerDay
			if dayPos > 0.5 && dayPos < 0.75 {
				mark = "*"
			}
			fmt.Printf("  tick %4d %s  %5.0f W / cap %5.0f W\n", k+1, mark, cl.GroupPower, cl.StaticCapGrp)
		}
	}
	fmt.Printf("\nover budget %.1f%% of ticks — the unchanged GM/EM/SM chain enforced\n",
		100*float64(over)/ticks)
	fmt.Println("a budget written by a controller the architecture never heard of.")
}
