// Quickstart: build a small data center, run the paper's coordinated
// power-management stack over synthetic enterprise workloads, and compare it
// against a no-management baseline.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nopower/internal/cluster"
	"nopower/internal/core"
	"nopower/internal/model"
	"nopower/internal/sim"
	"nopower/internal/tracegen"
)

func main() {
	const ticks = 2000

	// 1. Synthesize a workload mix: 24 enterprise traces (web, database,
	//    e-commerce, remote desktop, batch), reproducible from the seed.
	traces, err := tracegen.Generate(24, tracegen.Params{Ticks: ticks, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Build the plant: one 20-blade enclosure plus 4 standalone servers,
	//    all low-power blades, with the paper's base 20-15-10 power budgets.
	build := func() (*cluster.Cluster, error) {
		return cluster.New(cluster.Config{
			Enclosures:         1,
			BladesPerEnclosure: 20,
			Standalone:         4,
			Model:              model.BladeA(),
			CapOffGrp:          0.20, // group budget: 20 % below max draw
			CapOffEnc:          0.15,
			CapOffLoc:          0.10,
			AlphaV:             0.10, // virtualization overhead
			AlphaM:             0.10, // migration penalty
			MigrationTicks:     10,
		}, traces)
	}

	// 3. Measure the baseline: everything on at full speed, no controllers.
	baseline, err := sim.Baseline(build, ticks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline (no power management): %.0f W average\n\n", baseline)

	// 4. Run the coordinated stack: EC + SM + EM + GM + VMC, wired per the
	//    paper (r_ref channel, min-rule budgets, real utilization, feedback).
	cl, err := build()
	if err != nil {
		log.Fatal(err)
	}
	engine, handles, err := core.Build(cl, core.Coordinated())
	if err != nil {
		log.Fatal(err)
	}
	collector, err := engine.Run(ticks)
	if err != nil {
		log.Fatal(err)
	}
	res := collector.Finalize(baseline)

	fmt.Println("coordinated stack:")
	fmt.Printf("  average power    %7.0f W\n", res.AvgPower)
	fmt.Printf("  power savings    %7.1f %%\n", 100*res.PowerSavings)
	fmt.Printf("  performance loss %7.1f %%\n", 100*res.PerfLoss)
	fmt.Printf("  budget violations (server/enclosure/group) %.1f / %.1f / %.1f %%\n",
		100*res.ViolSM, 100*res.ViolEM, 100*res.ViolGM)
	fmt.Printf("  servers on       %7.1f of %d\n", res.AvgServersOn, cl.NumServers())
	fmt.Printf("  VM migrations    %7d\n", handles.VMC.Migrations())
}
