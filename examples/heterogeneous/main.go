// Heterogeneous: the paper's §6.1 extension (5) — a mixed fleet of
// low-power blades (Blade A) and 2U servers (Server B) under one coordinated
// stack. The controllers carry per-server models, so the same architecture
// handles both: the VMC learns that parking load on blades is cheaper
// (lower idle power) and drains the 2U boxes first.
//
// Run with:
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"nopower/internal/cluster"
	"nopower/internal/core"
	"nopower/internal/model"
	"nopower/internal/tracegen"
)

const ticks = 2000

func main() {
	traces, err := tracegen.Generate(24, tracegen.Params{Ticks: ticks, Seed: 3, Level: 0.7})
	if err != nil {
		log.Fatal(err)
	}
	// 12 blades in an enclosure + 12 standalone 2U servers.
	cl, err := cluster.New(cluster.Config{
		Enclosures:         1,
		BladesPerEnclosure: 12,
		Standalone:         12,
		Model:              model.BladeA(),
		CapOffGrp:          0.20, CapOffEnc: 0.15, CapOffLoc: 0.10,
		AlphaV: 0.10, AlphaM: 0.10, MigrationTicks: 10,
	}, traces)
	if err != nil {
		log.Fatal(err)
	}
	for _, sid := range cl.StandaloneServers() {
		if err := cl.SetModel(sid, model.ServerB()); err != nil {
			log.Fatal(err)
		}
	}

	engine, handles, err := core.Build(cl, core.Coordinated())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := engine.Run(ticks); err != nil {
		log.Fatal(err)
	}

	res := engine.Collector.Finalize(0)
	bladesOn, serversOn := 0, 0
	for i, n := 0, cl.NumServers(); i < n; i++ {
		if !cl.On(i) {
			continue
		}
		if cl.ServerModel(i).Name == "BladeA" {
			bladesOn++
		} else {
			serversOn++
		}
	}
	fmt.Println("mixed fleet: 12 BladeA blades + 12 ServerB 2U servers, coordinated stack")
	fmt.Printf("  final population: %d/12 blades on, %d/12 2U servers on\n", bladesOn, serversOn)
	fmt.Printf("  average power %.0f W, perf loss %.1f%%, migrations %d\n",
		res.AvgPower, 100*res.PerfLoss, handles.VMC.Migrations())
	if bladesOn <= serversOn {
		fmt.Println("  note: the packer preferred the high-idle 2U boxes this run;")
		fmt.Println("  with these demands the blade enclosure budget was the binding constraint.")
	} else {
		fmt.Println("  the VMC drained the high-idle 2U servers first, as expected.")
	}
}
