// Multitier: consolidation under correlated demand. The paper's trace corpus
// includes multi-tier applications (§4.3) whose tiers peak together — which
// matters to the VMC, because the "statistical load variations" the capping
// controllers rely on vanish when co-located workloads are correlated.
// This example packs the same aggregate demand twice: as independent
// workloads and as three-tier stacks, and compares the achievable savings
// and the performance risk.
//
// Run with:
//
//	go run ./examples/multitier
package main

import (
	"fmt"
	"log"

	"nopower/internal/cluster"
	"nopower/internal/core"
	"nopower/internal/model"
	"nopower/internal/sim"
	"nopower/internal/trace"
	"nopower/internal/tracegen"
)

const ticks = 3000

func main() {
	independent, err := tracegen.Generate(30, tracegen.Params{Ticks: ticks, Seed: 17, Level: 1.0})
	if err != nil {
		log.Fatal(err)
	}
	tiered, err := tracegen.GenerateMultiTier(10, nil, tracegen.Params{Ticks: ticks, Seed: 17, Level: 1.0})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("30 workloads on 30 BladeA servers, coordinated stack")
	fmt.Printf("%-22s %-12s %-12s %-12s %-10s\n", "corpus", "mean demand", "savings", "perf loss", "servers on")
	indep := runOne("independent mix", independent)
	tier := runOne("3-tier stacks (x10)", tiered)

	fmt.Println()
	fmt.Println("tiers of one stack peak together (within-stack correlation >0.8), which")
	fmt.Println("would defeat statistical multiplexing IF they were co-located. the packer,")
	fmt.Println("placing by estimated demand alone, freely mixes tiers of different stacks —")
	if tier.save >= indep.save-0.02 && tier.perf <= indep.perf+0.02 {
		fmt.Println("and indeed recovers the multiplexing: the tiered corpus consolidates as")
		fmt.Println("well as the independent one. correlation only bites when placement is")
		fmt.Println("constrained (affinity rules, small clusters).")
	} else {
		fmt.Println("but this run still paid for the correlation: fewer consolidation wins or")
		fmt.Println("more performance risk on the tiered corpus.")
	}
}

type outcome struct{ save, perf float64 }

func runOne(label string, set *trace.Set) outcome {
	build := func() (*cluster.Cluster, error) {
		return cluster.New(cluster.Config{
			Enclosures:         1,
			BladesPerEnclosure: 20,
			Standalone:         10,
			Model:              model.BladeA(),
			CapOffGrp:          0.20, CapOffEnc: 0.15, CapOffLoc: 0.10,
			AlphaV: 0.10, AlphaM: 0.10, MigrationTicks: 10,
		}, cloneSet(set))
	}
	baseline, err := sim.Baseline(build, ticks)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := build()
	if err != nil {
		log.Fatal(err)
	}
	engine, _, err := core.Build(cl, core.Coordinated())
	if err != nil {
		log.Fatal(err)
	}
	col, err := engine.Run(ticks)
	if err != nil {
		log.Fatal(err)
	}
	res := col.Finalize(baseline)
	fmt.Printf("%-22s %-12.3f %-12s %-12s %-10.1f\n",
		label, set.MeanDemand(),
		fmt.Sprintf("%.1f%%", 100*res.PowerSavings),
		fmt.Sprintf("%.1f%%", 100*res.PerfLoss),
		res.AvgServersOn)
	return outcome{save: res.PowerSavings, perf: res.PerfLoss}
}

func cloneSet(set *trace.Set) *trace.Set {
	out := &trace.Set{Name: set.Name}
	for _, tr := range set.Traces {
		out.Traces = append(out.Traces, tr.Clone())
	}
	return out
}
