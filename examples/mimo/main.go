// MIMO: the paper's §6.1 component/platform coordination sketch, running. A
// server is three power-manageable components — CPU, memory, disk — coupled
// by the bottleneck law; capping it well means co-selecting states: there is
// no point keeping memory at full speed when the budget has forced the CPU
// below memory's effective ceiling. The example contrasts the MIMO capper
// against a CPU-only capper across tightening budgets.
//
// Run with:
//
//	go run ./examples/mimo
package main

import (
	"fmt"
	"log"

	"nopower/internal/platform"
)

func main() {
	p := platform.Standard()
	demand := platform.Demand{0.45, 0.2, 0.1} // CPU-heavy web-style load

	fmt.Println("three-component platform (CPU 5 states, mem 3, disk 2)")
	fmt.Printf("demand cpu/mem/disk = %.2f/%.2f/%.2f; max power %.0f W\n\n",
		demand[0], demand[1], demand[2], p.MaxPower())
	fmt.Printf("%-10s  %-22s  %-22s\n", "budget", "CPU-only capper", "MIMO capper")
	fmt.Printf("%-10s  %-22s  %-22s\n", "", "served / power", "served / power")

	for _, frac := range []float64{1.0, 0.8, 0.6, 0.5, 0.45} {
		budget := frac * p.MaxPower()

		// Naive: mem/disk pinned at full state; throttle only the CPU.
		naiveServed, naivePower := -1.0, 0.0
		for cpu := range p.Components[0].States {
			served, power, err := p.Evaluate([]int{cpu, 0, 0}, demand)
			if err != nil {
				log.Fatal(err)
			}
			if power <= budget && served > naiveServed {
				naiveServed, naivePower = served, power
			}
		}
		naive := "infeasible"
		if naiveServed >= 0 {
			naive = fmt.Sprintf("%5.1f%% / %5.1f W", 100*naiveServed, naivePower)
		}

		_, served, power, ok, err := p.Optimize(demand, budget)
		if err != nil {
			log.Fatal(err)
		}
		mimo := fmt.Sprintf("%5.1f%% / %5.1f W", 100*served, power)
		if !ok {
			mimo += " (max throttle)"
		}
		fmt.Printf("%-10.0f  %-22s  %-22s\n", budget, naive, mimo)
	}
	fmt.Println("\nthe MIMO capper harvests idle mem/disk states first, so it serves more")
	fmt.Println("work at every budget the CPU-only capper can meet — and keeps degrading")
	fmt.Println("gracefully past the point where CPU-only capping goes infeasible.")
}
