// Consolidation: the VM controller following a diurnal load curve. Over a
// synthetic day the VMC packs VMs onto few machines at night, spreads them
// during the business-hours peak, and keeps the group under its power budget
// throughout — while the naive (apparent-utilization, budget-blind)
// consolidator either misses savings or tramples the budget.
//
// Run with:
//
//	go run ./examples/consolidation
package main

import (
	"fmt"
	"log"

	"nopower/internal/cluster"
	"nopower/internal/core"
	"nopower/internal/model"
	"nopower/internal/tracegen"
)

const (
	ticksPerDay = 600
	days        = 3
	ticks       = ticksPerDay * days
)

func main() {
	fmt.Printf("30 diurnal workloads on 30 BladeA servers, %d synthetic days\n\n", days)
	coordRes := run("coordinated VMC (real util, budget constraints, feedback)", core.Coordinated())
	fmt.Println()
	naiveSpec := core.Uncoordinated()
	naiveRes := run("naive VMC (apparent util, no budget awareness)", naiveSpec)
	fmt.Println()
	fmt.Printf("summary: coordinated %.1f%% savings with %.1f%% group violations;\n",
		100*coordRes.save, 100*coordRes.violGM)
	fmt.Printf("         naive       %.1f%% savings with %.1f%% group violations\n",
		100*naiveRes.save, 100*naiveRes.violGM)
}

type outcome struct {
	save, violGM float64
}

func run(label string, spec core.Spec) outcome {
	traces, err := tracegen.Generate(30, tracegen.Params{
		Ticks: ticks, TicksPerDay: ticksPerDay, Seed: 11, Level: 0.9,
	})
	if err != nil {
		log.Fatal(err)
	}
	build := func() (*cluster.Cluster, error) {
		return cluster.New(cluster.Config{
			Enclosures:         1,
			BladesPerEnclosure: 20,
			Standalone:         10,
			Model:              model.BladeA(),
			CapOffGrp:          0.20, CapOffEnc: 0.15, CapOffLoc: 0.10,
			AlphaV: 0.10, AlphaM: 0.10, MigrationTicks: 10,
		}, traces)
	}
	cl, err := build()
	if err != nil {
		log.Fatal(err)
	}
	baselinePower := 0.0
	{
		// Baseline: everything on at P0 (fresh cluster, no controllers).
		bcl, err := build()
		if err != nil {
			log.Fatal(err)
		}
		for k := 0; k < ticks; k++ {
			bcl.Advance(k)
			baselinePower += bcl.GroupPower / ticks
		}
	}

	spec.Periods.VMC = 100 // repack a few times per synthetic day
	engine, handles, err := core.Build(cl, spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(label)
	fmt.Println("  servers on over time (sampled every 50 ticks):")
	fmt.Print("  ")
	for k := 0; k < ticks; k++ {
		if _, err := engine.Run(1); err != nil {
			log.Fatal(err)
		}
		if k%50 == 49 {
			fmt.Printf("%2d ", cl.OnCount())
		}
	}
	fmt.Println()
	res := engine.Collector.Finalize(baselinePower)
	fmt.Printf("  savings %.1f%%, perf loss %.1f%%, migrations %d, group violations %.1f%%\n",
		100*res.PowerSavings, 100*res.PerfLoss, handles.VMC.Migrations(), 100*res.ViolGM)
	return outcome{save: res.PowerSavings, violGM: res.ViolGM}
}
