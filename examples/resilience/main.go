// Resilience: the §3.2 flexibility claims under fire. The coordinated stack
// runs while the world changes underneath it — servers fail and return, the
// operator slashes the group power budget, and demand surges fleet-wide —
// and the architecture absorbs each perturbation the same way it absorbs
// workload variation, with no reconfiguration.
//
// Run with:
//
//	go run ./examples/resilience
package main

import (
	"fmt"
	"log"

	"nopower/internal/cluster"
	"nopower/internal/core"
	"nopower/internal/model"
	"nopower/internal/sim"
	"nopower/internal/tracegen"
)

const ticks = 2400

func main() {
	traces, err := tracegen.Generate(20, tracegen.Params{Ticks: ticks, Seed: 21, Level: 0.9})
	if err != nil {
		log.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		Enclosures:         1,
		BladesPerEnclosure: 12,
		Standalone:         8,
		Model:              model.BladeA(),
		CapOffGrp:          0.20, CapOffEnc: 0.15, CapOffLoc: 0.10,
		AlphaV: 0.10, AlphaM: 0.10, MigrationTicks: 10,
	}, traces)
	if err != nil {
		log.Fatal(err)
	}
	originalGroupCap := cl.StaticCapGrp

	spec := core.Coordinated()
	spec.Periods.VMC = 200 // react within a couple hundred ticks
	engine, handles, err := core.Build(cl, spec)
	if err != nil {
		log.Fatal(err)
	}

	// The storyline.
	injector := sim.NewEventInjector(
		sim.FailServer(600, 3),
		sim.FailServer(605, 7),
		sim.SetGroupBudget(1200, originalGroupCap*0.8),
		sim.ScaleDemand(1700, 1.5),
		sim.RestoreServer(2000, 3),
		sim.RestoreServer(2000, 7),
	)
	engine.Controllers = append([]sim.Controller{injector}, engine.Controllers...)

	fmt.Println("20 workloads, 20 BladeA servers, coordinated stack under perturbations")
	fmt.Printf("%-6s %-10s %-10s %-12s %s\n", "tick", "on", "power(W)", "group-cap", "events so far")
	for k := 0; k < ticks; k++ {
		if _, err := engine.Run(1); err != nil {
			log.Fatal(err)
		}
		if k%200 == 199 {
			fmt.Printf("%-6d %-10d %-10.0f %-12.0f %d\n",
				k+1, cl.OnCount(), cl.GroupPower, cl.StaticCapGrp, len(injector.Fired()))
		}
	}

	res := engine.Collector.Finalize(0)
	fmt.Println()
	fmt.Println("events injected:", injector.Fired())
	fmt.Printf("whole-run: avg power %.0f W, perf loss %.1f%%, migrations %d, group violations %.1f%%\n",
		res.AvgPower, 100*res.PerfLoss, handles.VMC.Migrations(), 100*res.ViolGM)
	if res.ViolGM < 0.1 {
		fmt.Println("the stack held the (moving) group budget through failures, cuts, and surges.")
	}
}
