// Capping: the paper's §5.1 lab-prototype scenario — one server under
// sustained high load with both an efficiency controller (EC) and a server
// manager (SM) deployed. Coordinated, the SM steers the EC's utilization
// target and the power stays bounded near the thermal budget; uncoordinated,
// the two controllers fight over the P-state and the budget violation
// persists — the road to thermal failover.
//
// Run with:
//
//	go run ./examples/capping
package main

import (
	"fmt"
	"log"
	"strings"

	"nopower/internal/cluster"
	"nopower/internal/core"
	"nopower/internal/model"
	"nopower/internal/trace"
)

const ticks = 400

func main() {
	fmt.Println("one BladeA server, sustained ~100% load, 90 W thermal budget")
	fmt.Println()
	run("coordinated   (SM steers the EC's r_ref)", true)
	fmt.Println()
	run("uncoordinated (SM and EC both write the P-state)", false)
}

func run(label string, coordinated bool) {
	// A single saturating workload.
	demand := make([]float64, ticks)
	for i := range demand {
		demand[i] = 1.05
	}
	set := &trace.Set{Name: "hot", Traces: []*trace.Trace{
		{Name: "load", Class: "synthetic", Demand: demand},
	}}
	cl, err := cluster.New(cluster.Config{
		Standalone: 1,
		Model:      model.BladeA(),
		CapOffGrp:  0.20, CapOffEnc: 0.15, CapOffLoc: 0.10,
		AlphaV: 0.10, AlphaM: 0.10, MigrationTicks: 10,
	}, set)
	if err != nil {
		log.Fatal(err)
	}

	spec := core.Spec{
		EnableEC: true, EnableSM: true,
		Coordinated: coordinated,
		Periods:     core.DefaultPeriods(),
	}
	engine, _, err := core.Build(cl, spec)
	if err != nil {
		log.Fatal(err)
	}

	over := 0
	fmt.Printf("%s\n", label)
	fmt.Printf("  budget %.0f W; power trace (one char per 10 ticks, # = over budget):\n  ", cl.StaticCap(0))
	var bar strings.Builder
	for k := 0; k < ticks; k++ {
		if _, err := engine.Run(1); err != nil {
			log.Fatal(err)
		}
		if cl.Power(0) > cl.StaticCap(0) {
			over++
		}
		if k%10 == 9 {
			if cl.Power(0) > cl.StaticCap(0) {
				bar.WriteByte('#')
			} else {
				bar.WriteByte('.')
			}
		}
	}
	fmt.Println(bar.String())
	fmt.Printf("  over budget %.0f%% of the time; final state P%d at %.0f W\n",
		100*float64(over)/ticks, cl.PState(0), cl.Power(0))
}
