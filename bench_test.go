// Benchmarks: one per reproduced table/figure (DESIGN.md §4). Each benchmark
// regenerates its artifact end-to-end — trace synthesis, baseline run,
// controller-stack runs — at a reduced tick count so `go test -bench=.`
// finishes in minutes; `cmd/npexp` runs the same experiments at full length.
// Micro-benchmarks for the hot paths (plant advance, packing, controller
// ticks) follow the experiment benches.
package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"testing"

	"nopower/internal/binpack"
	"nopower/internal/checkpoint"
	"nopower/internal/cluster"
	"nopower/internal/core"
	"nopower/internal/experiments"
	"nopower/internal/model"
	"nopower/internal/obs/prof"
	"nopower/internal/tracegen"
)

// benchOpts keeps one experiment iteration around a second.
func benchOpts() []experiments.Option {
	return []experiments.Option{experiments.WithTicks(1200), experiments.WithSeed(42)}
}

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunExperiment(context.Background(), name, benchOpts()...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelSweep compares the fig7+fig8 batch — the headline
// configuration sweep, 44 independent simulations — run serially against
// the worker-pool fan-out at GOMAXPROCS. The output tables are
// byte-identical either way; only the wall clock should differ.
func BenchmarkParallelSweep(b *testing.B) {
	for _, parallel := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("parallel=%d", parallel), func(b *testing.B) {
			opts := append(benchOpts(), experiments.WithParallelism(parallel))
			for i := 0; i < b.N; i++ {
				for _, name := range []string{"fig7", "fig8"} {
					if _, err := experiments.RunExperiment(context.Background(), name, opts...); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkFig7 regenerates Fig. 7 (E1): coordinated vs uncoordinated
// violations and performance loss across the four base configurations.
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8 regenerates Fig. 8 (E2): per-controller savings isolation
// across the six workload mixes and both systems.
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Fig. 9 (E3): the coordination-interface
// ablation table.
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Fig. 10 (E4): the power-budget sweep.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkPStates regenerates the §5.3 P-state-count study (E5).
func BenchmarkPStates(b *testing.B) { benchExperiment(b, "pstates") }

// BenchmarkMachineOff regenerates the §5.4 machine-off study (E6).
func BenchmarkMachineOff(b *testing.B) { benchExperiment(b, "machineoff") }

// BenchmarkMigration regenerates the §5.4 migration-overhead study (E7).
func BenchmarkMigration(b *testing.B) { benchExperiment(b, "migration") }

// BenchmarkTimeConstants regenerates the §5.4 time-constant study (E8).
func BenchmarkTimeConstants(b *testing.B) { benchExperiment(b, "timeconst") }

// BenchmarkPolicies regenerates the §5.4 policy study (E9).
func BenchmarkPolicies(b *testing.B) { benchExperiment(b, "policies") }

// BenchmarkFailover regenerates the §5.1 thermal-failover prototype (E10).
func BenchmarkFailover(b *testing.B) { benchExperiment(b, "failover") }

// BenchmarkStability regenerates the Appendix-A stability sweeps (E11).
func BenchmarkStability(b *testing.B) { benchExperiment(b, "stability") }

// BenchmarkMultiSeed regenerates the seed-robustness check (E12).
func BenchmarkMultiSeed(b *testing.B) { benchExperiment(b, "multiseed") }

// BenchmarkExtensions regenerates the §6.1 extension suite (E13).
func BenchmarkExtensions(b *testing.B) { benchExperiment(b, "extensions") }

// --- Ablation benches for the design choices DESIGN.md §5 calls out ---

func benchStack(b *testing.B, spec core.Spec, ticks int) {
	b.Helper()
	sc := experiments.Scenario{Model: "BladeA", Mix: tracegen.Mix180,
		Budgets: experiments.Base201510(), Ticks: ticks, Seed: 42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl, err := sc.BuildCluster()
		if err != nil {
			b.Fatal(err)
		}
		eng, _, err := core.Build(cl, spec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(ticks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStackCoordinated measures a full coordinated run (180 servers).
func BenchmarkStackCoordinated(b *testing.B) { benchStack(b, core.Coordinated(), 1200) }

// BenchmarkStackUncoordinated measures the uncoordinated deployment.
func BenchmarkStackUncoordinated(b *testing.B) { benchStack(b, core.Uncoordinated(), 1200) }

// BenchmarkStackApparentUtil measures the apparent-utilization ablation.
func BenchmarkStackApparentUtil(b *testing.B) { benchStack(b, core.CoordinatedApparentUtil(), 1200) }

// BenchmarkStackNoBudgets measures the unconstrained-packer ablation.
func BenchmarkStackNoBudgets(b *testing.B) { benchStack(b, core.CoordinatedNoBudgetLimits(), 1200) }

// BenchmarkCheckpointOverhead measures what crash-safety costs a full
// coordinated run (180 servers, 1200 ticks): "off" is the plain engine path
// (CheckpointEvery zero — the per-tick check is one integer compare), and
// each every=N case attaches a Saver writing real gzip'd snapshots to a
// temp dir. The acceptance bar is <5% overhead at the npsim default of
// every 500 ticks.
func BenchmarkCheckpointOverhead(b *testing.B) {
	sc := experiments.Scenario{Model: "BladeA", Mix: tracegen.Mix180,
		Budgets: experiments.Base201510(), Ticks: 1200, Seed: 42}
	for _, every := range []int{0, 500, 100} {
		name := "off"
		if every > 0 {
			name = fmt.Sprintf("every=%d", every)
		}
		b.Run(name, func(b *testing.B) {
			dir := b.TempDir()
			for i := 0; i < b.N; i++ {
				cl, err := sc.BuildCluster()
				if err != nil {
					b.Fatal(err)
				}
				eng, _, err := core.Build(cl, core.Coordinated())
				if err != nil {
					b.Fatal(err)
				}
				var s *checkpoint.Saver
				if every > 0 {
					s = &checkpoint.Saver{Dir: dir, Every: every}
					if err := s.Attach(eng); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := eng.Run(sc.Ticks); err != nil {
					b.Fatal(err)
				}
				if s != nil {
					if err := s.Flush(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- Micro-benchmarks for the substrate hot paths ---

func benchCluster(b *testing.B) *cluster.Cluster {
	b.Helper()
	set, err := tracegen.BuildMix(tracegen.Mix180, 1000, 42)
	if err != nil {
		b.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{
		Enclosures: 6, BladesPerEnclosure: 20, Standalone: 60,
		Model:     model.BladeA(),
		CapOffGrp: 0.20, CapOffEnc: 0.15, CapOffLoc: 0.10,
		AlphaV: 0.10, AlphaM: 0.10, MigrationTicks: 10,
	}, set)
	if err != nil {
		b.Fatal(err)
	}
	return cl
}

// BenchmarkClusterAdvance measures one plant tick for 180 servers.
func BenchmarkClusterAdvance(b *testing.B) {
	cl := benchCluster(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.Advance(i)
	}
}

// benchProfiler returns a fresh span profiler when the run asked for the
// phase breakdown (NPBENCH_PROFILE=1, set by `make bench-json`), else nil —
// the default keeps the benchmarks measuring the unobserved engine.
func benchProfiler() *prof.Profiler {
	if os.Getenv("NPBENCH_PROFILE") == "" {
		return nil
	}
	return prof.New(1 << 20)
}

// reportPhases turns the profiled run's span ring into custom benchmark
// metrics: mean ns per span for the dominant engine phases plus the shard
// load-imbalance ratio. They ride the `go test -bench` output into the
// flight-recorder artifact (npprof record), giving every BENCH_*.json a
// phase breakdown next to its ns/op.
func reportPhases(b *testing.B, p *prof.Profiler) {
	if p == nil {
		return
	}
	unit := map[string]string{
		prof.PhaseAdvance:    "advance-ns/tick",
		prof.PhaseReduce:     "reduce-ns/tick",
		prof.PhaseObserve:    "observe-ns/tick",
		prof.PhaseTick:       "tick-ns/tick",
		prof.PhaseCheckpoint: "checkpoint-ns/op",
	}
	for _, st := range p.PhaseStats() {
		if u, ok := unit[st.Phase]; ok && st.Count > 0 {
			b.ReportMetric(float64(st.Total)/float64(st.Count), u)
		}
	}
	if imb := p.ShardImbalance(prof.PhaseShard); imb > 0 {
		b.ReportMetric(imb, "imbalance")
	}
}

// benchScaleFleet runs one full simulated run over a synthetic fleet
// (coordinated stack minus the VMC, like the scale experiments), serial vs
// one shard per CPU. The scale experiments verify the runs are bitwise
// identical; these benchmarks measure what the sharding buys. Trace
// synthesis and cluster construction happen outside the timer — the tick
// loop is the subject. With NPBENCH_PROFILE=1 each run is profiled and the
// phase breakdown is reported as custom metrics (profiling is outside the
// default path so the headline ns/op stays unobserved).
func benchScaleFleet(b *testing.B, servers int) {
	b.Helper()
	const ticks = 60
	set, err := tracegen.BuildMix(tracegen.ScaleMix(servers), ticks, 42)
	if err != nil {
		b.Fatal(err)
	}
	sc := experiments.Scenario{Model: "BladeA", Budgets: experiments.Base201510(),
		Ticks: ticks, Seed: 42, Traces: set}
	shardCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		shardCounts = append(shardCounts, n)
	}
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			p := benchProfiler()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cl, err := sc.BuildCluster()
				if err != nil {
					b.Fatal(err)
				}
				spec := core.NoVMC()
				spec.Shards = shards
				eng, _, err := core.Build(cl, spec)
				if err != nil {
					b.Fatal(err)
				}
				eng.Prof = p
				b.StartTimer()
				if _, err := eng.Run(ticks); err != nil {
					b.Fatal(err)
				}
			}
			reportPhases(b, p)
		})
	}
}

// BenchmarkScale10k is the E17 wall-clock companion at a 10k-server fleet.
func BenchmarkScale10k(b *testing.B) { benchScaleFleet(b, 10000) }

// BenchmarkScale100k is the E18 wall-clock companion: the same setup at a
// 100k-server fleet. The acceptance bar for the columnar cluster store is
// ≥2x tick throughput here over the AoS baseline recorded in EXPERIMENTS.md.
func BenchmarkScale100k(b *testing.B) { benchScaleFleet(b, 100000) }

// BenchmarkBinpack180 measures one VMC packing problem: 180 VMs, 180 bins.
func BenchmarkBinpack180(b *testing.B) {
	items := make([]binpack.Item, 180)
	for i := range items {
		items[i] = binpack.Item{ID: i, Demand: 0.1 + float64(i%7)*0.05, Current: i}
	}
	bins := make([]binpack.Bin, 180)
	for i := range bins {
		bins[i] = binpack.Bin{
			ID: i, Capacity: 0.85, FullCapacity: 1,
			IdlePower: 60, PowerSlope: 40, PowerBudget: 90,
			Enclosure: i / 20, On: true,
		}
	}
	enc := map[int]float64{}
	for e := 0; e < 9; e++ {
		enc[e] = 1700
	}
	p := binpack.Problem{Items: items, Bins: bins, EnclosureBudgets: enc,
		GroupBudget: 14400, MigrationWeight: 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := binpack.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracegen180 measures synthesizing the full 180-trace mix.
func BenchmarkTracegen180(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tracegen.BuildMix(tracegen.Mix180, 1000, 42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkECSteadyPower measures the packer's feasibility-curve evaluation.
func BenchmarkECSteadyPower(b *testing.B) {
	m := model.ServerB()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.ECSteadyPower(0.75, float64(i%100)/100)
	}
}
