// Command npexp reproduces the paper's evaluation artifacts. Each named
// experiment regenerates one table or figure (see DESIGN.md §4 for the
// index); "all" runs the full evaluation and prints every artifact,
// -markdown renders GitHub-flavored tables suitable for EXPERIMENTS.md, and
// -json emits one machine-readable document.
//
// Independent simulation jobs inside each experiment fan out across a
// worker pool: -parallel bounds the workers (default GOMAXPROCS), -timeout
// cancels the whole batch, and the tables are byte-identical at any
// parallelism level.
//
// Usage:
//
//	npexp [-ticks N] [-seed S] [-parallel P] [-timeout D] [-markdown|-json] <experiment>...|all|list
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"nopower/internal/experiments"
	"nopower/internal/obs"
	"nopower/internal/obs/prof"
	"nopower/internal/report"
	"nopower/internal/runner"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI; split from main for testability.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("npexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		ticks     = fs.Int("ticks", experiments.DefaultTicks, "simulation length per run in ticks")
		seed      = fs.Int64("seed", 42, "trace/policy seed")
		parallel  = fs.Int("parallel", 0, "max concurrent simulation jobs (0 = GOMAXPROCS, 1 = serial)")
		shards    = fs.Int("shards", 0, "goroutines per simulation tick inside each job (0 = serial; results are bit-identical at any value)")
		timeout   = fs.Duration("timeout", 0, "cancel the batch after this duration (0 = none)")
		markdown  = fs.Bool("markdown", false, "render Markdown tables")
		jsonOut   = fs.Bool("json", false, "emit one JSON document with every table")
		quiet     = fs.Bool("q", false, "suppress progress output (errors still print)")
		verbose   = fs.Int("v", 0, "log verbosity: 0 = progress, 1+ = per-experiment runner detail")
		httpAddr  = fs.String("http", "", "serve /metrics, /healthz and /debug/pprof on this address for the batch's duration (e.g. :8080)")
		resumeDir = fs.String("resume-dir", "", "persist finished experiments into this directory and skip them on rerun (resumable batches)")
		timeline  = fs.String("timeline", "", "write a Chrome trace-event timeline of every simulation's internal phases to this path (open in Perfetto)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	verbosity := *verbose
	if *quiet {
		verbosity = -1
	}
	logger := obs.NewLogger(stderr, verbosity)
	if fs.NArg() < 1 {
		usage(stderr)
		return 2
	}
	if fs.Arg(0) == "list" {
		for _, name := range experiments.Names() {
			fmt.Fprintf(stdout, "  %-12s %s\n", name, experiments.Describe(name))
		}
		return 0
	}

	var names []string
	for _, arg := range fs.Args() {
		if arg == "all" {
			names = append(names, experiments.Names()...)
			continue
		}
		names = append(names, arg)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *httpAddr != "" {
		runner.RegisterMetrics(obs.Default)
		srv, err := obs.Serve(*httpAddr, obs.Default)
		if err != nil {
			logger.Error("http endpoint failed", "err", err)
			return 1
		}
		defer srv.Close()
		logger.Info("observability endpoint up",
			"addr", srv.Addr.String(), "paths", "/metrics /healthz /debug/pprof/")
	}

	// The defaults reach scenarios that experiments build internally
	// (baselines, chaos runs); the options cover the explicit path.
	experiments.SetDefaultShards(*shards)
	var profiler *prof.Profiler
	if *timeline != "" {
		profiler = prof.New(0)
		experiments.SetDefaultProfiler(profiler)
	}
	opts := []experiments.Option{
		experiments.WithTicks(*ticks),
		experiments.WithSeed(*seed),
		experiments.WithParallelism(*parallel),
		experiments.WithShards(*shards),
	}
	// Resumable batches: each settled experiment's tables persist in a slot
	// store keyed by (name, ticks, seed), so a rerun after a kill or failure
	// skips everything already done.
	var store *runner.SlotStore[[]*report.Table]
	if *resumeDir != "" {
		if err := os.MkdirAll(*resumeDir, 0o755); err != nil {
			logger.Error("resume dir", "err", err)
			return 1
		}
		var err error
		store, err = runner.OpenSlotStore[[]*report.Table](filepath.Join(*resumeDir, "experiments.json"))
		if err != nil {
			logger.Error("resume store", "err", err)
			return 1
		}
		if store.Len() > 0 {
			logger.Info("resumable batch", "settled", store.Len())
		}
	}
	slotKey := func(name string) string {
		return fmt.Sprintf("%s@t=%d,s=%d", name, *ticks, *seed)
	}

	type namedTables struct {
		Experiment string          `json:"experiment"`
		Tables     []*report.Table `json:"tables"`
	}
	var all []namedTables
	batchStart := time.Now()
	batchJobs := runner.JobCount()
	for _, name := range names {
		start := time.Now()
		jobs := runner.JobCount()
		var tables []*report.Table
		var fromStore bool
		if store != nil {
			cached, ok, err := store.Get(slotKey(name))
			if err != nil {
				logger.Error("resume store", "experiment", name, "err", err)
				return 1
			}
			tables, fromStore = cached, ok
		}
		if !fromStore {
			var err error
			tables, err = experiments.RunExperiment(ctx, name, opts...)
			if err != nil {
				if errors.Is(err, context.DeadlineExceeded) {
					logger.Error("experiment timed out", "experiment", name, "timeout", *timeout)
				} else {
					logger.Error("experiment failed", "experiment", name, "err", err)
				}
				return 1
			}
			if store != nil {
				if err := store.Put(slotKey(name), tables); err != nil {
					logger.Error("resume store", "experiment", name, "err", err)
					return 1
				}
			}
		}
		if fromStore {
			logger.Info("experiment resumed from store", "experiment", name)
		} else {
			logger.Info("experiment done",
				"experiment", name,
				"secs", fmt.Sprintf("%.1f", time.Since(start).Seconds()),
				"jobs", runner.JobCount()-jobs,
				"parallel", runner.Parallelism(*parallel))
		}
		if verbosity >= 1 {
			stats := runner.Stats()
			logger.Debug("runner pool",
				"jobs_started", stats.JobsStarted, "jobs_done", stats.JobsDone,
				"cache_hits", stats.CacheHits, "cache_misses", stats.CacheMisses)
		}
		if *jsonOut {
			all = append(all, namedTables{Experiment: name, Tables: tables})
			continue
		}
		for _, t := range tables {
			if *markdown {
				fmt.Fprintln(stdout, t.Markdown())
			} else {
				fmt.Fprintln(stdout, t.String())
			}
		}
	}
	if len(names) > 1 {
		logger.Info("batch done",
			"wall_secs", fmt.Sprintf("%.1f", time.Since(batchStart).Seconds()),
			"jobs", runner.JobCount()-batchJobs)
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			logger.Error("json encode failed", "err", err)
			return 1
		}
	}
	if profiler != nil {
		f, err := os.Create(*timeline)
		if err != nil {
			logger.Error("timeline", "err", err)
			return 1
		}
		if err := profiler.WriteChromeTrace(f); err != nil {
			f.Close()
			logger.Error("timeline", "err", err)
			return 1
		}
		if err := f.Close(); err != nil {
			logger.Error("timeline", "err", err)
			return 1
		}
		logger.Info("timeline written", "spans", profiler.Len(),
			"dropped", profiler.Dropped(), "path", *timeline)
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: npexp [-ticks N] [-seed S] [-parallel P] [-timeout D] [-markdown|-json] <experiment>...|all|list")
	fmt.Fprintln(w, "experiments:")
	for _, name := range experiments.Names() {
		fmt.Fprintf(w, "  %-12s %s\n", name, experiments.Describe(name))
	}
}
