// Command npexp reproduces the paper's evaluation artifacts. Each named
// experiment regenerates one table or figure (see DESIGN.md §4 for the
// index); "all" runs the full evaluation and prints every artifact,
// -markdown renders GitHub-flavored tables suitable for EXPERIMENTS.md, and
// -json emits one machine-readable document.
//
// Usage:
//
//	npexp [-ticks N] [-seed S] [-markdown|-json] <experiment>...|all|list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"nopower/internal/experiments"
	"nopower/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI; split from main for testability.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("npexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		ticks    = fs.Int("ticks", experiments.DefaultTicks, "simulation length per run in ticks")
		seed     = fs.Int64("seed", 42, "trace/policy seed")
		markdown = fs.Bool("markdown", false, "render Markdown tables")
		jsonOut  = fs.Bool("json", false, "emit one JSON document with every table")
		quiet    = fs.Bool("q", false, "suppress progress output")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() < 1 {
		usage(stderr)
		return 2
	}
	if fs.Arg(0) == "list" {
		for _, name := range experiments.Names() {
			fmt.Fprintf(stdout, "  %-12s %s\n", name, experiments.Describe(name))
		}
		return 0
	}

	var names []string
	for _, arg := range fs.Args() {
		if arg == "all" {
			names = append(names, experiments.Names()...)
			continue
		}
		names = append(names, arg)
	}

	opts := experiments.Options{Ticks: *ticks, Seed: *seed}
	type namedTables struct {
		Experiment string          `json:"experiment"`
		Tables     []*report.Table `json:"tables"`
	}
	var all []namedTables
	for _, name := range names {
		start := time.Now()
		tables, err := experiments.RunExperiment(name, opts)
		if err != nil {
			fmt.Fprintf(stderr, "npexp %s: %v\n", name, err)
			return 1
		}
		if !*quiet {
			fmt.Fprintf(stderr, "[%s: %.1fs]\n", name, time.Since(start).Seconds())
		}
		if *jsonOut {
			all = append(all, namedTables{Experiment: name, Tables: tables})
			continue
		}
		for _, t := range tables {
			if *markdown {
				fmt.Fprintln(stdout, t.Markdown())
			} else {
				fmt.Fprintln(stdout, t.String())
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(stderr, "npexp:", err)
			return 1
		}
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: npexp [-ticks N] [-seed S] [-markdown|-json] <experiment>...|all|list")
	fmt.Fprintln(w, "experiments:")
	for _, name := range experiments.Names() {
		fmt.Fprintf(w, "  %-12s %s\n", name, experiments.Describe(name))
	}
}
