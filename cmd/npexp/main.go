// Command npexp reproduces the paper's evaluation artifacts. Each named
// experiment regenerates one table or figure (see DESIGN.md §4 for the
// index); "all" runs the full evaluation and prints every artifact,
// -markdown renders GitHub-flavored tables suitable for EXPERIMENTS.md, and
// -json emits one machine-readable document.
//
// Independent simulation jobs inside each experiment fan out across a
// worker pool: -parallel bounds the workers (default GOMAXPROCS), -timeout
// cancels the whole batch, and the tables are byte-identical at any
// parallelism level.
//
// Usage:
//
//	npexp [-ticks N] [-seed S] [-parallel P] [-timeout D] [-markdown|-json] <experiment>...|all|list
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"nopower/internal/experiments"
	"nopower/internal/report"
	"nopower/internal/runner"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI; split from main for testability.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("npexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		ticks    = fs.Int("ticks", experiments.DefaultTicks, "simulation length per run in ticks")
		seed     = fs.Int64("seed", 42, "trace/policy seed")
		parallel = fs.Int("parallel", 0, "max concurrent simulation jobs (0 = GOMAXPROCS, 1 = serial)")
		timeout  = fs.Duration("timeout", 0, "cancel the batch after this duration (0 = none)")
		markdown = fs.Bool("markdown", false, "render Markdown tables")
		jsonOut  = fs.Bool("json", false, "emit one JSON document with every table")
		quiet    = fs.Bool("q", false, "suppress progress output")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() < 1 {
		usage(stderr)
		return 2
	}
	if fs.Arg(0) == "list" {
		for _, name := range experiments.Names() {
			fmt.Fprintf(stdout, "  %-12s %s\n", name, experiments.Describe(name))
		}
		return 0
	}

	var names []string
	for _, arg := range fs.Args() {
		if arg == "all" {
			names = append(names, experiments.Names()...)
			continue
		}
		names = append(names, arg)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := []experiments.Option{
		experiments.WithTicks(*ticks),
		experiments.WithSeed(*seed),
		experiments.WithParallelism(*parallel),
	}
	type namedTables struct {
		Experiment string          `json:"experiment"`
		Tables     []*report.Table `json:"tables"`
	}
	var all []namedTables
	batchStart := time.Now()
	batchJobs := runner.JobCount()
	for _, name := range names {
		start := time.Now()
		jobs := runner.JobCount()
		tables, err := experiments.RunExperiment(ctx, name, opts...)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintf(stderr, "npexp %s: timed out after %s\n", name, *timeout)
			} else {
				fmt.Fprintf(stderr, "npexp %s: %v\n", name, err)
			}
			return 1
		}
		if !*quiet {
			fmt.Fprintf(stderr, "[%s: %.1fs, %d jobs, parallel=%d]\n",
				name, time.Since(start).Seconds(), runner.JobCount()-jobs, runner.Parallelism(*parallel))
		}
		if *jsonOut {
			all = append(all, namedTables{Experiment: name, Tables: tables})
			continue
		}
		for _, t := range tables {
			if *markdown {
				fmt.Fprintln(stdout, t.Markdown())
			} else {
				fmt.Fprintln(stdout, t.String())
			}
		}
	}
	if !*quiet && len(names) > 1 {
		fmt.Fprintf(stderr, "[total: %.1fs wall, %d jobs]\n",
			time.Since(batchStart).Seconds(), runner.JobCount()-batchJobs)
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(stderr, "npexp:", err)
			return 1
		}
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: npexp [-ticks N] [-seed S] [-parallel P] [-timeout D] [-markdown|-json] <experiment>...|all|list")
	fmt.Fprintln(w, "experiments:")
	for _, name := range experiments.Names() {
		fmt.Fprintf(w, "  %-12s %s\n", name, experiments.Describe(name))
	}
}
