package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestListCommand(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, name := range []string{"fig7", "fig8", "stability", "extensions"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("list missing %q", name)
		}
	}
}

func TestNoArgsUsage(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "usage:") {
		t.Error("usage not printed")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"bogus"}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Errorf("stderr = %q", errOut.String())
	}
}

func TestStabilityText(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-q", "stability"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Appendix A") {
		t.Errorf("missing table title in %q", out.String())
	}
	if errOut.Len() != 0 {
		t.Errorf("-q still printed progress: %q", errOut.String())
	}
}

func TestStabilityMarkdownAndJSON(t *testing.T) {
	var md, errOut bytes.Buffer
	if code := run([]string{"-q", "-markdown", "stability"}, &md, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(md.String(), "| Loop |") {
		t.Error("markdown table missing")
	}

	var js bytes.Buffer
	if code := run([]string{"-q", "-json", "stability"}, &js, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	var doc []struct {
		Experiment string `json:"experiment"`
		Tables     []struct {
			Title string
			Rows  [][]string
		} `json:"tables"`
	}
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc) != 1 || doc[0].Experiment != "stability" || len(doc[0].Tables) == 0 {
		t.Errorf("JSON shape wrong: %+v", doc)
	}
}

// A small real experiment end to end through the CLI (reduced ticks).
func TestFailoverThroughCLI(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-q", "-ticks", "800", "failover"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Uncoordinated EC+SM") {
		t.Error("failover table missing rows")
	}
}

// TestSlogVerbosityLevels pins the structured-logging contract: default runs
// log progress as slog INFO lines, -v 1 adds runner-pool DEBUG detail, and
// -q (covered by TestStabilityText) silences both.
func TestSlogVerbosityLevels(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"stability"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), `level=INFO msg="experiment done" experiment=stability`) {
		t.Errorf("progress not logged via slog:\n%s", errOut.String())
	}
	if strings.Contains(errOut.String(), "level=DEBUG") {
		t.Errorf("debug detail leaked at default verbosity:\n%s", errOut.String())
	}

	errOut.Reset()
	out.Reset()
	if code := run([]string{"-v", "1", "stability"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), `level=DEBUG msg="runner pool"`) {
		t.Errorf("-v 1 missing runner-pool debug line:\n%s", errOut.String())
	}
}

// TestResumeDirSkipsSettledExperiments pins the resumable-batch contract: a
// second run with the same -resume-dir serves settled experiments from the
// slot store (logging "resumed from store") and produces identical output,
// while a changed key (different ticks) reruns.
func TestResumeDirSkipsSettledExperiments(t *testing.T) {
	dir := t.TempDir()
	var first, errOut bytes.Buffer
	if code := run([]string{"-resume-dir", dir, "stability"}, &first, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), `msg="experiment done"`) {
		t.Fatalf("first run did not execute the experiment:\n%s", errOut.String())
	}

	var second, errOut2 bytes.Buffer
	if code := run([]string{"-resume-dir", dir, "stability"}, &second, &errOut2); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut2.String())
	}
	if !strings.Contains(errOut2.String(), `msg="experiment resumed from store"`) {
		t.Errorf("second run did not resume from the store:\n%s", errOut2.String())
	}
	if strings.Contains(errOut2.String(), `msg="experiment done"`) {
		t.Errorf("second run re-executed a settled experiment:\n%s", errOut2.String())
	}
	if first.String() != second.String() {
		t.Error("resumed output differs from the original run")
	}

	// A different ticks value is a different slot key: must rerun.
	var third, errOut3 bytes.Buffer
	if code := run([]string{"-resume-dir", dir, "-ticks", "500", "failover"}, &third, &errOut3); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut3.String())
	}
	if !strings.Contains(errOut3.String(), `msg="experiment done"`) {
		t.Errorf("new key did not execute:\n%s", errOut3.String())
	}
}
