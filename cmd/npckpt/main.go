// Command npckpt inspects nopower checkpoint files.
//
// Usage:
//
//	npckpt info <file>       print metadata and per-component sizes
//	npckpt validate <file>   verify magic, version, checksum, and decodability
//	npckpt diff <a> <b>      compare two snapshots component by component
//
// diff exits 0 when the snapshots are identical, 1 when they differ, and 2
// on any error; info and validate exit 0 on success and 1 on failure.
package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"nopower/internal/checkpoint"
	"nopower/internal/sim"
	"nopower/internal/state"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI; split from main for testability.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "info":
		if len(args) != 2 {
			usage(stderr)
			return 2
		}
		return info(args[1], stdout, stderr)
	case "validate":
		if len(args) != 2 {
			usage(stderr)
			return 2
		}
		return validate(args[1], stdout, stderr)
	case "diff":
		if len(args) != 3 {
			usage(stderr)
			return 2
		}
		return diff(args[1], args[2], stdout, stderr)
	}
	usage(stderr)
	return 2
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: npckpt info <file> | validate <file> | diff <a> <b>")
}

func info(path string, stdout, stderr io.Writer) int {
	f, err := checkpoint.Read(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	st, _ := os.Stat(path)
	fmt.Fprintf(stdout, "file        %s (%d bytes)\n", path, st.Size())
	fmt.Fprintf(stdout, "experiment  %s\n", f.Meta.Experiment)
	fmt.Fprintf(stdout, "tick        %d\n", f.Meta.Tick)
	fmt.Fprintf(stdout, "mid-tick    %v", f.Meta.MidTick)
	if f.Meta.MidTick {
		fmt.Fprint(stdout, "  (checkpoint-on-panic post-mortem; not resumable)")
	}
	fmt.Fprintln(stdout)
	if f.Meta.CreatedUnix != 0 {
		fmt.Fprintf(stdout, "created     %s\n", time.Unix(f.Meta.CreatedUnix, 0).UTC().Format(time.RFC3339))
	}
	if len(f.Meta.Labels) > 0 {
		keys := make([]string, 0, len(f.Meta.Labels))
		for k := range f.Meta.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprint(stdout, "labels      ")
		for i, k := range keys {
			if i > 0 {
				fmt.Fprint(stdout, " ")
			}
			fmt.Fprintf(stdout, "%s=%s", k, f.Meta.Labels[k])
		}
		fmt.Fprintln(stdout)
	}
	s := f.State
	fmt.Fprintf(stdout, "cluster     %d servers, %d enclosures, %d VMs\n",
		len(s.Cluster.Servers), len(s.Cluster.Enclosures), len(s.Cluster.VMs))
	fmt.Fprintf(stdout, "controllers %d\n", len(s.Controllers))
	for _, c := range s.Controllers {
		fmt.Fprintf(stdout, "  %-10s %6d bytes\n", c.Name, len(c.Data))
	}
	if len(s.Aux) > 0 {
		fmt.Fprintf(stdout, "aux         %d\n", len(s.Aux))
		for _, c := range s.Aux {
			fmt.Fprintf(stdout, "  %-10s %6d bytes\n", c.Name, len(c.Data))
		}
	}
	fmt.Fprintf(stdout, "collector   %6d bytes\n", len(s.Collector))
	disabled := 0
	for _, d := range s.Disabled {
		if d {
			disabled++
		}
	}
	if disabled > 0 {
		fmt.Fprintf(stdout, "disabled    %d controllers (degraded mode)\n", disabled)
	}
	return 0
}

func validate(path string, stdout, stderr io.Writer) int {
	f, err := checkpoint.Read(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	kind := "resumable checkpoint"
	if f.Meta.MidTick {
		kind = "mid-tick post-mortem (not resumable)"
	}
	fmt.Fprintf(stdout, "%s: valid %s at tick %d (version %d)\n", path, kind, f.Meta.Tick, checkpoint.Version)
	return 0
}

// componentDelta names one snapshot component that differs between two files.
type componentDelta struct {
	kind, name string
}

func diff(pathA, pathB string, stdout, stderr io.Writer) int {
	fa, err := checkpoint.Read(pathA)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	fb, err := checkpoint.Read(pathB)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	deltas, err := snapshotDiff(fa.State, fb.State)
	if err != nil {
		fmt.Fprintln(stderr, "diff:", err)
		return 2
	}
	if len(deltas) == 0 {
		fmt.Fprintf(stdout, "identical: %s == %s (tick %d)\n", pathA, pathB, fa.State.Tick)
		return 0
	}
	fmt.Fprintf(stdout, "differ: %s vs %s (%d components)\n", pathA, pathB, len(deltas))
	for _, d := range deltas {
		fmt.Fprintf(stdout, "  %-11s %s\n", d.kind, d.name)
	}
	return 1
}

// snapshotDiff compares two snapshots component by component. State blobs
// are gob encodings of map-free structs, so a byte comparison is meaningful:
// equal state encodes equal bytes.
func snapshotDiff(a, b *sim.Snapshot) ([]componentDelta, error) {
	var deltas []componentDelta
	if a.Tick != b.Tick {
		deltas = append(deltas, componentDelta{"engine", fmt.Sprintf("tick %d vs %d", a.Tick, b.Tick)})
	}
	if a.MidTick != b.MidTick {
		deltas = append(deltas, componentDelta{"engine", "mid-tick flag"})
	}
	ca, err := state.Marshal(a.Cluster)
	if err != nil {
		return nil, err
	}
	cb, err := state.Marshal(b.Cluster)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(ca, cb) {
		deltas = append(deltas, componentDelta{"cluster", "plant state"})
	}
	deltas = append(deltas, componentsDiff("controller", a.Controllers, b.Controllers)...)
	deltas = append(deltas, componentsDiff("aux", a.Aux, b.Aux)...)
	if !bytes.Equal(a.Collector, b.Collector) {
		deltas = append(deltas, componentDelta{"collector", "metrics collector"})
	}
	if fmt.Sprint(a.Disabled) != fmt.Sprint(b.Disabled) ||
		fmt.Sprint(a.FailsafeBroken) != fmt.Sprint(b.FailsafeBroken) {
		deltas = append(deltas, componentDelta{"engine", "fault bookkeeping"})
	}
	return deltas, nil
}

// componentsDiff aligns two component lists by name and reports blobs that
// differ, plus components present on one side only.
func componentsDiff(kind string, as, bs []sim.Component) []componentDelta {
	var deltas []componentDelta
	bByName := make(map[string][]byte, len(bs))
	for _, c := range bs {
		bByName[c.Name] = c.Data
	}
	seen := make(map[string]bool, len(as))
	for _, c := range as {
		seen[c.Name] = true
		data, ok := bByName[c.Name]
		if !ok {
			deltas = append(deltas, componentDelta{kind, c.Name + " (only in first)"})
			continue
		}
		if !bytes.Equal(c.Data, data) {
			deltas = append(deltas, componentDelta{kind, c.Name})
		}
	}
	for _, c := range bs {
		if !seen[c.Name] {
			deltas = append(deltas, componentDelta{kind, c.Name + " (only in second)"})
		}
	}
	return deltas
}
