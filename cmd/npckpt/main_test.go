package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nopower/internal/checkpoint"
	"nopower/internal/core"
	"nopower/internal/experiments"
	"nopower/internal/sim"
	"nopower/internal/tracegen"
)

// writeSnapshot runs a small coordinated simulation for ticks and writes its
// snapshot to a file, returning the path.
func writeSnapshot(t *testing.T, dir string, ticks int) string {
	t.Helper()
	sc := experiments.Scenario{Model: "BladeA", Mix: tracegen.Mix60L,
		Budgets: experiments.Base201510(), Ticks: 600, Seed: 42}
	cl, err := sc.BuildCluster()
	if err != nil {
		t.Fatal(err)
	}
	spec := core.Coordinated()
	spec.Seed = 42
	spec.Periods = core.Periods{EC: 1, SM: 2, EM: 5, GM: 10, VMC: 20}
	eng, _, err := core.Build(cl, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(ticks); err != nil {
		t.Fatal(err)
	}
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, checkpoint.FileName(ticks))
	f := &checkpoint.File{
		Meta: checkpoint.Meta{Tick: snap.Tick, Experiment: "unit",
			Labels: map[string]string{"stack": "coordinated"}, CreatedUnix: 1700000000},
		State: snap,
	}
	if _, err := checkpoint.Write(path, f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestUsageAndBadArgs(t *testing.T) {
	for _, args := range [][]string{nil, {"bogus"}, {"info"}, {"diff", "a"}} {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
		if !strings.Contains(errOut.String(), "usage:") {
			t.Errorf("run(%v) stderr = %q", args, errOut.String())
		}
	}
}

func TestInfo(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, 40)
	var out, errOut bytes.Buffer
	if code := run([]string{"info", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, frag := range []string{"tick        40", "stack=coordinated", "controllers",
		"VMC", "GM", "EM", "SM", "EC", "rng", "collector", "servers"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("info output missing %q:\n%s", frag, out.String())
		}
	}
}

func TestValidate(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, 10)
	var out, errOut bytes.Buffer
	if code := run([]string{"validate", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "valid resumable checkpoint at tick 10") {
		t.Errorf("validate output = %q", out.String())
	}

	// Corrupt one payload byte: validate must fail on the checksum.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	bad := filepath.Join(dir, "bad.npckpt")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"validate", bad}, &out, &errOut); code != 1 {
		t.Fatalf("validate of corrupt file: exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "checksum") {
		t.Errorf("stderr = %q, want checksum error", errOut.String())
	}
}

func TestDiffIdenticalAndDiffering(t *testing.T) {
	dir := t.TempDir()
	a := writeSnapshot(t, dir, 40)

	// Same simulation rebuilt from scratch at the same tick: identical.
	b := filepath.Join(dir, "b.npckpt")
	same := writeSnapshot(t, t.TempDir(), 40)
	fsame, err := checkpoint.Read(same)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := checkpoint.Write(b, fsame); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"diff", a, b}, &out, &errOut); code != 0 {
		t.Fatalf("diff of identical snapshots: exit %d\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "identical") {
		t.Errorf("diff output = %q", out.String())
	}

	// A later tick of the same run: must differ, naming the moved parts.
	c := writeSnapshot(t, t.TempDir(), 60)
	out.Reset()
	if code := run([]string{"diff", a, c}, &out, &errOut); code != 1 {
		t.Fatalf("diff of different ticks: exit %d, want 1\n%s", code, out.String())
	}
	for _, frag := range []string{"differ", "tick 40 vs 60", "cluster", "collector"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("diff output missing %q:\n%s", frag, out.String())
		}
	}

	// Unreadable operand: exit 2.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"diff", a, filepath.Join(dir, "missing.npckpt")}, &out, &errOut); code != 2 {
		t.Errorf("diff with missing file: exit %d, want 2", code)
	}
}

func TestInfoPanicSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, 10)
	f, err := checkpoint.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	f.Meta.MidTick = true
	f.State.MidTick = true
	ppath := filepath.Join(dir, checkpoint.PanicFileName(10))
	if _, err := checkpoint.Write(ppath, f); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"info", ppath}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "not resumable") {
		t.Errorf("info of a panic snapshot missing the not-resumable note:\n%s", out.String())
	}
	var snap *sim.Snapshot = f.State
	if !snap.MidTick {
		t.Fatal("fixture lost the mid-tick flag")
	}
}
