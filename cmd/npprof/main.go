// Command npprof manages the perf flight recorder: schema-versioned JSON
// artifacts capturing one `go test -bench` run (see internal/obs/prof and
// DESIGN.md §13). `record` parses bench output into an artifact, `show`
// pretty-prints one, and `compare` joins two on benchmark name and gates
// the ns/op deltas against a regression threshold — the `make verify`
// perf smoke.
//
// Usage:
//
//	go test -bench 'Scale' . | npprof record -note "columnar store" -o bench/BENCH_$(date -u +%Y%m%dT%H%M%SZ).json
//	npprof show bench/BENCH_20260808T120000Z.json
//	npprof compare -max-regress 0.03 bench/BENCH_old.json bench/BENCH_new.json
//
// Exit codes: 0 ok, 1 error, 2 usage, 3 regression detected (compare).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"nopower/internal/obs/prof"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run executes the CLI; split from main for testability.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	switch cmd {
	case "record":
		note := fs.String("note", "", "free-form label stored in the artifact")
		out := fs.String("o", "", "output artifact path (default stdout)")
		if err := fs.Parse(args[1:]); err != nil {
			return 2
		}
		in := stdin
		if fs.NArg() == 1 {
			f, err := os.Open(fs.Arg(0))
			if err != nil {
				fmt.Fprintln(stderr, "npprof:", err)
				return 1
			}
			defer f.Close()
			in = f
		} else if fs.NArg() > 1 {
			fmt.Fprintln(stderr, "npprof: record takes at most one input file (default stdin)")
			return 2
		}
		benches, err := prof.ParseGoBench(in)
		if err != nil {
			fmt.Fprintln(stderr, "npprof:", err)
			return 1
		}
		a := prof.NewArtifact(*note, benches)
		w := stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(stderr, "npprof:", err)
				return 1
			}
			defer f.Close()
			w = f
		}
		if err := prof.WriteArtifact(w, a); err != nil {
			fmt.Fprintln(stderr, "npprof:", err)
			return 1
		}
		if *out != "" {
			fmt.Fprintf(stderr, "npprof: recorded %d benchmarks to %s\n", len(benches), *out)
		}
		return 0
	case "show":
		if err := fs.Parse(args[1:]); err != nil {
			return 2
		}
		if fs.NArg() != 1 {
			fmt.Fprintln(stderr, "npprof: show takes exactly one artifact path")
			return 2
		}
		a, err := prof.ReadArtifact(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, "npprof:", err)
			return 1
		}
		showArtifact(stdout, a)
		return 0
	case "compare":
		maxRegress := fs.Float64("max-regress", 0.03,
			"fail (exit 3) when a benchmark's ns/op exceeds base*(1+this)")
		if err := fs.Parse(args[1:]); err != nil {
			return 2
		}
		if fs.NArg() != 2 {
			fmt.Fprintln(stderr, "npprof: compare takes exactly two artifact paths: base head")
			return 2
		}
		base, err := prof.ReadArtifact(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, "npprof:", err)
			return 1
		}
		head, err := prof.ReadArtifact(fs.Arg(1))
		if err != nil {
			fmt.Fprintln(stderr, "npprof:", err)
			return 1
		}
		if base.Host != head.Host {
			fmt.Fprintf(stderr, "npprof: warning: artifacts from different hosts (%+v vs %+v); numbers may not be comparable\n",
				base.Host, head.Host)
		}
		deltas, onlyBase, onlyHead, err := prof.Compare(base, head, *maxRegress)
		if err != nil {
			fmt.Fprintln(stderr, "npprof:", err)
			return 1
		}
		regressed := 0
		fmt.Fprintf(stdout, "%-44s %-12s %14s %14s %8s\n", "benchmark", "metric", "base", "head", "ratio")
		for _, d := range deltas {
			mark := ""
			if d.Regressed {
				mark = "  REGRESSED"
				regressed++
			}
			fmt.Fprintf(stdout, "%-44s %-12s %14.6g %14.6g %8.3f%s\n",
				d.Name, d.Metric, d.Old, d.New, d.Ratio, mark)
		}
		for _, n := range onlyBase {
			fmt.Fprintf(stdout, "only in base: %s\n", n)
		}
		for _, n := range onlyHead {
			fmt.Fprintf(stdout, "only in head: %s\n", n)
		}
		if regressed > 0 {
			fmt.Fprintf(stderr, "npprof: %d benchmark(s) regressed beyond %.1f%% on %s\n",
				regressed, *maxRegress*100, prof.GatingMetric)
			return 3
		}
		return 0
	}
	usage(stderr)
	return 2
}

// showArtifact pretty-prints one flight-recorder file.
func showArtifact(w io.Writer, a prof.Artifact) {
	fmt.Fprintf(w, "recorded %s on %s/%s (%d CPUs, %s, host %s)\n",
		time.Unix(a.CreatedUnix, 0).UTC().Format(time.RFC3339),
		a.Host.OS, a.Host.Arch, a.Host.CPUs, a.Host.GoVersion, a.Host.Hostname)
	if a.Note != "" {
		fmt.Fprintf(w, "note: %s\n", a.Note)
	}
	for _, b := range a.Benchmarks {
		fmt.Fprintf(w, "%-52s %10d iters", b.Name, b.Iters)
		units := make([]string, 0, len(b.Metrics))
		for u := range b.Metrics {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, u := range units {
			fmt.Fprintf(w, "  %g %s", b.Metrics[u], u)
		}
		fmt.Fprintln(w)
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  npprof record  [-note s] [-o out.json] [bench-output.txt]   (default: stdin)
  npprof show    artifact.json
  npprof compare [-max-regress 0.03] base.json head.json      (exit 3 on regression)`)
}
