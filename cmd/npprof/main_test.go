package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
BenchmarkScale10k/shards=1-8         	       4	 285000000 ns/op	 1200000 B/op	    9000 allocs/op
BenchmarkScale10k/shards=8-8         	      12	  95000000 ns/op	 1300000 B/op	    9500 allocs/op	    1.25 imbalance
PASS
ok  	nopower	12.3s
`

// record writes benchOutput (with ns/op scaled by factor) through the record
// subcommand and returns the artifact path.
func record(t *testing.T, dir, name string, factor float64) string {
	t.Helper()
	scaled := benchOutput
	if factor != 1 {
		scaled = strings.ReplaceAll(scaled, "285000000", "342000000") // +20%
	}
	path := filepath.Join(dir, name)
	var out, errOut bytes.Buffer
	code := run([]string{"record", "-note", "test", "-o", path},
		strings.NewReader(scaled), &out, &errOut)
	if code != 0 {
		t.Fatalf("record exit %d: %s", code, errOut.String())
	}
	return path
}

func TestRecordAndShow(t *testing.T) {
	dir := t.TempDir()
	path := record(t, dir, "base.json", 1)

	var out, errOut bytes.Buffer
	if code := run([]string{"show", path}, nil, &out, &errOut); code != 0 {
		t.Fatalf("show exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{"note: test", "BenchmarkScale10k/shards=1",
		"2.85e+08 ns/op", "1.25 imbalance"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("show output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRecordToStdout(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"record"}, strings.NewReader(benchOutput), &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), `"schema": 1`) {
		t.Errorf("stdout artifact missing schema:\n%s", out.String())
	}
}

func TestRecordRejectsEmptyInput(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"record"}, strings.NewReader("PASS\nok\n"), &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1 for input with no benchmark lines", code)
	}
	if !strings.Contains(errOut.String(), "no benchmark result lines") {
		t.Errorf("stderr %q", errOut.String())
	}
}

func TestComparePassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	base := record(t, dir, "base.json", 1)
	head := record(t, dir, "head.json", 1) // identical numbers

	var out, errOut bytes.Buffer
	if code := run([]string{"compare", base, head}, nil, &out, &errOut); code != 0 {
		t.Fatalf("compare exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "ns/op") || !strings.Contains(out.String(), "1.000") {
		t.Errorf("delta table missing:\n%s", out.String())
	}
}

func TestCompareFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	base := record(t, dir, "base.json", 1)
	head := record(t, dir, "head.json", 1.2) // shards=1 ns/op +20%

	var out, errOut bytes.Buffer
	code := run([]string{"compare", "-max-regress", "0.03", base, head}, nil, &out, &errOut)
	if code != 3 {
		t.Fatalf("compare exit %d, want 3 on regression:\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("regressed delta not marked:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "regressed beyond 3.0%") {
		t.Errorf("stderr %q", errOut.String())
	}

	// A generous threshold lets the same pair pass.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"compare", "-max-regress", "0.5", base, head}, nil, &out, &errOut); code != 0 {
		t.Fatalf("compare exit %d at 50%% threshold: %s", code, errOut.String())
	}
}

func TestCompareErrorsWithoutSharedBenchmarks(t *testing.T) {
	dir := t.TempDir()
	base := record(t, dir, "base.json", 1)
	other := filepath.Join(dir, "other.json")
	var out, errOut bytes.Buffer
	code := run([]string{"record", "-o", other},
		strings.NewReader("BenchmarkRenamed-8 \t 10\t 1000 ns/op\n"), &out, &errOut)
	if code != 0 {
		t.Fatalf("record exit %d: %s", code, errOut.String())
	}
	if code := run([]string{"compare", base, other}, nil, &out, &errOut); code != 1 {
		t.Fatalf("compare exit %d, want 1 when no benchmarks are shared", code)
	}
}

func TestUsageAndBadSubcommand(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, nil, &out, &errOut); code != 2 {
		t.Errorf("no args exit %d", code)
	}
	if code := run([]string{"bogus"}, nil, &out, &errOut); code != 2 {
		t.Errorf("bogus subcommand exit %d", code)
	}
	if code := run([]string{"show"}, nil, &out, &errOut); code != 2 {
		t.Errorf("show without path exit %d", code)
	}
	if code := run([]string{"compare", "one.json"}, nil, &out, &errOut); code != 2 {
		t.Errorf("compare with one path exit %d", code)
	}
	if code := run([]string{"show", filepath.Join(t.TempDir(), "missing.json")}, nil, &out, &errOut); code != 1 {
		t.Errorf("show missing file exit %d", code)
	}
}
