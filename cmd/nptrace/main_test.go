package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nopower/internal/obs"
	"nopower/internal/trace"
)

func TestUsageOnBadInvocation(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args exit %d", code)
	}
	if code := run([]string{"frobnicate"}, &out, &errOut); code != 2 {
		t.Errorf("bad subcommand exit %d", code)
	}
	if !strings.Contains(errOut.String(), "usage:") {
		t.Error("usage not printed")
	}
}

func TestGenToStdoutAndRoundTrip(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"gen", "-mix", "60L", "-ticks", "50", "-seed", "3"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	set, err := trace.ReadCSV(bytes.NewReader(out.Bytes()), "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 60 || set.Traces[0].Len() != 50 {
		t.Errorf("round trip shape: %d traces x %d", set.Len(), set.Traces[0].Len())
	}
}

func TestGenToFileAndStatIn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tr.csv")
	var out, errOut bytes.Buffer
	if code := run([]string{"gen", "-mix", "60L", "-ticks", "40", "-o", path}, &out, &errOut); code != 0 {
		t.Fatalf("gen exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "wrote 60 traces") {
		t.Errorf("gen confirmation missing: %q", errOut.String())
	}
	out.Reset()
	if code := run([]string{"stat", "-in", path}, &out, &errOut); code != 0 {
		t.Fatalf("stat exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "60 traces, 40 ticks") {
		t.Errorf("stat header missing: %q", out.String())
	}
	if !strings.Contains(out.String(), "web-") {
		t.Error("per-trace rows missing")
	}
}

func TestStatGenerated(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"stat", "-mix", "60M", "-ticks", "60"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "mean demand") {
		t.Error("summary line missing")
	}
}

func TestGenUnknownMix(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"gen", "-mix", "bogus"}, &out, &errOut); code != 1 {
		t.Errorf("unknown mix exit %d", code)
	}
	if code := run([]string{"stat", "-in", "/nonexistent/file.csv"}, &out, &errOut); code != 1 {
		t.Errorf("missing file exit %d", code)
	}
}

func TestEventsSummaryAndTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ndjson")
	var buf bytes.Buffer
	w := obs.NewNDJSONWriter(&buf)
	// Two controllers fight over server 3's P-state at tick 0 — one conflict.
	w.Emit(obs.Event{Tick: 0, Controller: "EC", Actuator: obs.ActPState, Target: 3, New: 1})
	w.Emit(obs.Event{Tick: 0, Controller: "SM", Actuator: obs.ActPState, Target: 3, New: 2})
	w.Emit(obs.Event{Tick: 1, Controller: "VMC", Actuator: obs.ActPlacement, Target: 7, New: 4})
	// Simulate a writer killed mid-line: drop the tail of the last record.
	data := buf.Bytes()
	if err := os.WriteFile(path, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut bytes.Buffer
	if code := run([]string{"events", "-in", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "skipped 1 malformed line") {
		t.Errorf("truncated-tail warning missing: %q", errOut.String())
	}
	for _, want := range []string{"2 events", "1 conflicts", "EC", "SM", "pstate",
		"conflict tick 0: EC then SM wrote pstate/3"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, out.String())
		}
	}

	// Missing -in and an all-garbage file are hard errors.
	if code := run([]string{"events"}, &out, &errOut); code != 2 {
		t.Errorf("events without -in exit %d", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.ndjson")
	if err := os.WriteFile(bad, []byte("garbage\n{also broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"events", "-in", bad}, &out, &errOut); code != 1 {
		t.Errorf("all-garbage file exit %d", code)
	}
}
