package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"nopower/internal/trace"
)

func TestUsageOnBadInvocation(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args exit %d", code)
	}
	if code := run([]string{"frobnicate"}, &out, &errOut); code != 2 {
		t.Errorf("bad subcommand exit %d", code)
	}
	if !strings.Contains(errOut.String(), "usage:") {
		t.Error("usage not printed")
	}
}

func TestGenToStdoutAndRoundTrip(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"gen", "-mix", "60L", "-ticks", "50", "-seed", "3"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	set, err := trace.ReadCSV(bytes.NewReader(out.Bytes()), "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 60 || set.Traces[0].Len() != 50 {
		t.Errorf("round trip shape: %d traces x %d", set.Len(), set.Traces[0].Len())
	}
}

func TestGenToFileAndStatIn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tr.csv")
	var out, errOut bytes.Buffer
	if code := run([]string{"gen", "-mix", "60L", "-ticks", "40", "-o", path}, &out, &errOut); code != 0 {
		t.Fatalf("gen exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "wrote 60 traces") {
		t.Errorf("gen confirmation missing: %q", errOut.String())
	}
	out.Reset()
	if code := run([]string{"stat", "-in", path}, &out, &errOut); code != 0 {
		t.Fatalf("stat exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "60 traces, 40 ticks") {
		t.Errorf("stat header missing: %q", out.String())
	}
	if !strings.Contains(out.String(), "web-") {
		t.Error("per-trace rows missing")
	}
}

func TestStatGenerated(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"stat", "-mix", "60M", "-ticks", "60"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "mean demand") {
		t.Error("summary line missing")
	}
}

func TestGenUnknownMix(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"gen", "-mix", "bogus"}, &out, &errOut); code != 1 {
		t.Errorf("unknown mix exit %d", code)
	}
	if code := run([]string{"stat", "-in", "/nonexistent/file.csv"}, &out, &errOut); code != 1 {
		t.Errorf("missing file exit %d", code)
	}
}
