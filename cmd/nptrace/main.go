// Command nptrace generates, inspects, and exports the synthetic enterprise
// utilization traces that stand in for the paper's 180 real-world traces
// (see DESIGN.md §2 for the substitution rationale).
//
// Usage:
//
//	nptrace gen  -mix 180 -ticks 3000 -seed 42 -o traces.csv
//	nptrace stat -mix 180 -ticks 3000 -seed 42
//	nptrace stat -in traces.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nopower/internal/trace"
	"nopower/internal/tracegen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI; split from main for testability.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		mix   = fs.String("mix", "180", "workload mix: 180, 60L, 60M, 60H, 60HH, 60HHH")
		ticks = fs.Int("ticks", 3000, "trace length in ticks")
		seed  = fs.Int64("seed", 42, "generation seed")
		out   = fs.String("o", "", "output CSV path (gen; default stdout)")
		in    = fs.String("in", "", "input CSV path (stat; default: generate)")
	)
	if err := fs.Parse(args[1:]); err != nil {
		return 2
	}

	switch cmd {
	case "gen":
		set, err := tracegen.BuildMix(tracegen.Mix(*mix), *ticks, *seed)
		if err != nil {
			fmt.Fprintln(stderr, "nptrace:", err)
			return 1
		}
		w := stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(stderr, "nptrace:", err)
				return 1
			}
			defer f.Close()
			w = f
		}
		if err := trace.WriteCSV(w, set); err != nil {
			fmt.Fprintln(stderr, "nptrace:", err)
			return 1
		}
		if *out != "" {
			fmt.Fprintf(stderr, "wrote %d traces x %d ticks to %s\n", set.Len(), *ticks, *out)
		}
		return 0
	case "stat":
		var set *trace.Set
		if *in != "" {
			f, err := os.Open(*in)
			if err != nil {
				fmt.Fprintln(stderr, "nptrace:", err)
				return 1
			}
			defer f.Close()
			set, err = trace.ReadCSV(f, *in)
			if err != nil {
				fmt.Fprintln(stderr, "nptrace:", err)
				return 1
			}
		} else {
			var err error
			set, err = tracegen.BuildMix(tracegen.Mix(*mix), *ticks, *seed)
			if err != nil {
				fmt.Fprintln(stderr, "nptrace:", err)
				return 1
			}
		}
		fmt.Fprintf(stdout, "set %s: %d traces, %d ticks, mean demand %.3f\n",
			set.Name, set.Len(), set.Traces[0].Len(), set.MeanDemand())
		fmt.Fprintf(stdout, "%-22s %-14s %6s %6s %6s %6s %6s\n",
			"trace", "class", "mean", "p50", "p95", "max", "std")
		for _, tr := range set.Traces {
			s := tr.Summarize()
			fmt.Fprintf(stdout, "%-22s %-14s %6.3f %6.3f %6.3f %6.3f %6.3f\n",
				tr.Name, tr.Class, s.Mean, s.P50, s.P95, s.Max, s.StdDev)
		}
		return 0
	}
	usage(stderr)
	return 2
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  nptrace gen  -mix 180 -ticks 3000 -seed 42 [-o out.csv]
  nptrace stat [-mix 180 -ticks 3000 -seed 42 | -in traces.csv]`)
}
