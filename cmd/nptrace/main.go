// Command nptrace generates, inspects, and exports the synthetic enterprise
// utilization traces that stand in for the paper's 180 real-world traces
// (see DESIGN.md §2 for the substitution rationale).
//
// Usage:
//
//	nptrace gen    -mix 180 -ticks 3000 -seed 42 -o traces.csv
//	nptrace stat   -mix 180 -ticks 3000 -seed 42
//	nptrace stat   -in traces.csv
//	nptrace events -in run.ndjson
//
// The events subcommand summarizes an actuation trace (`npsim -trace`):
// per-controller and per-actuator event counts plus a conflict replay. It
// tolerates a truncated or corrupt tail — the usual state of a trace whose
// writer was killed mid-line — skipping bad lines with a warning instead of
// refusing the whole file.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"nopower/internal/obs"
	"nopower/internal/trace"
	"nopower/internal/tracegen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI; split from main for testability.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		mix   = fs.String("mix", "180", "workload mix: 180, 60L, 60M, 60H, 60HH, 60HHH")
		ticks = fs.Int("ticks", 3000, "trace length in ticks")
		seed  = fs.Int64("seed", 42, "generation seed")
		out   = fs.String("o", "", "output CSV path (gen; default stdout)")
		in    = fs.String("in", "", "input CSV path (stat; default: generate)")
	)
	if err := fs.Parse(args[1:]); err != nil {
		return 2
	}

	switch cmd {
	case "gen":
		set, err := tracegen.BuildMix(tracegen.Mix(*mix), *ticks, *seed)
		if err != nil {
			fmt.Fprintln(stderr, "nptrace:", err)
			return 1
		}
		w := stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(stderr, "nptrace:", err)
				return 1
			}
			defer f.Close()
			w = f
		}
		if err := trace.WriteCSV(w, set); err != nil {
			fmt.Fprintln(stderr, "nptrace:", err)
			return 1
		}
		if *out != "" {
			fmt.Fprintf(stderr, "wrote %d traces x %d ticks to %s\n", set.Len(), *ticks, *out)
		}
		return 0
	case "events":
		if *in == "" {
			fmt.Fprintln(stderr, "nptrace: events requires -in <trace.ndjson>")
			return 2
		}
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(stderr, "nptrace:", err)
			return 1
		}
		defer f.Close()
		events, bad, err := obs.ReadEvents(f)
		if err != nil {
			fmt.Fprintln(stderr, "nptrace:", err)
			return 1
		}
		if bad > 0 {
			fmt.Fprintf(stderr, "nptrace: warning: skipped %d malformed line(s) (truncated tail?)\n", bad)
		}
		if len(events) == 0 {
			fmt.Fprintln(stderr, "nptrace: no events in", *in)
			return 1
		}
		summarizeEvents(stdout, events)
		return 0
	case "stat":
		var set *trace.Set
		if *in != "" {
			f, err := os.Open(*in)
			if err != nil {
				fmt.Fprintln(stderr, "nptrace:", err)
				return 1
			}
			defer f.Close()
			set, err = trace.ReadCSV(f, *in)
			if err != nil {
				fmt.Fprintln(stderr, "nptrace:", err)
				return 1
			}
		} else {
			var err error
			set, err = tracegen.BuildMix(tracegen.Mix(*mix), *ticks, *seed)
			if err != nil {
				fmt.Fprintln(stderr, "nptrace:", err)
				return 1
			}
		}
		fmt.Fprintf(stdout, "set %s: %d traces, %d ticks, mean demand %.3f\n",
			set.Name, set.Len(), set.Traces[0].Len(), set.MeanDemand())
		fmt.Fprintf(stdout, "%-22s %-14s %6s %6s %6s %6s %6s\n",
			"trace", "class", "mean", "p50", "p95", "max", "std")
		for _, tr := range set.Traces {
			s := tr.Summarize()
			fmt.Fprintf(stdout, "%-22s %-14s %6.3f %6.3f %6.3f %6.3f %6.3f\n",
				tr.Name, tr.Class, s.Mean, s.P50, s.P95, s.Max, s.StdDev)
		}
		return 0
	}
	usage(stderr)
	return 2
}

// summarizeEvents prints the actuation-trace rollup: tick span, counts per
// controller and per actuator, and a conflict replay through the same
// detector the live engine uses.
func summarizeEvents(w io.Writer, events []obs.Event) {
	byCtl := map[string]int{}
	byAct := map[string]int{}
	det := obs.NewConflictDetector()
	minTick, maxTick := events[0].Tick, events[0].Tick
	for _, e := range events {
		byCtl[e.Controller]++
		byAct[e.Actuator]++
		det.Emit(e)
		if e.Tick < minTick {
			minTick = e.Tick
		}
		if e.Tick > maxTick {
			maxTick = e.Tick
		}
	}
	fmt.Fprintf(w, "%d events, ticks %d..%d, %d conflicts\n",
		len(events), minTick, maxTick, det.Count())
	fmt.Fprintf(w, "%-12s %8s\n", "controller", "events")
	for _, k := range sortedKeys(byCtl) {
		fmt.Fprintf(w, "%-12s %8d\n", k, byCtl[k])
	}
	fmt.Fprintf(w, "%-12s %8s\n", "actuator", "events")
	for _, k := range sortedKeys(byAct) {
		fmt.Fprintf(w, "%-12s %8d\n", k, byAct[k])
	}
	for i, c := range det.Conflicts() {
		if i == 10 {
			fmt.Fprintf(w, "... %d more conflicts\n", det.Count()-10)
			break
		}
		fmt.Fprintf(w, "conflict tick %d: %s then %s wrote %s/%d (%g -> %g)\n",
			c.Tick, c.First, c.Second, c.Actuator, c.Target, c.FirstValue, c.SecondValue)
	}
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  nptrace gen    -mix 180 -ticks 3000 -seed 42 [-o out.csv]
  nptrace stat   [-mix 180 -ticks 3000 -seed 42 | -in traces.csv]
  nptrace events -in run.ndjson`)
}
