// Command npsim runs one power-management simulation and prints the
// evaluation metrics: average/peak power, savings versus the
// no-management baseline, performance loss, and budget-violation rates at
// the server/enclosure/group levels.
//
// Usage:
//
//	npsim -model BladeA -mix 180 -stack coordinated -ticks 3000
//	npsim -traces mine.csv -stack vmlevel -series out.csv
//	npsim -chaos sm-crash -fault-policy degrade
//	npsim -checkpoint-dir ckpt -checkpoint-every 500       # crash-safe run
//	npsim -checkpoint-dir ckpt -resume                     # continue it
//	npsim -shards 8 -timeline run.json                     # phase timeline (Perfetto)
//	npsim -facility -mix aiburst -series fac.csv           # facility co-simulation + PUE
//	npsim -profiles arm-microblade:3,serverb:1 -mix hetero # heterogeneous fleet
//
// Stacks: coordinated, uncoordinated, novmc, vmconly, apprutil, nofeedback,
// nobudgets, vmlevel, energydelay, slo, facility, none.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"nopower/internal/checkpoint"
	"nopower/internal/controllers/fm"
	"nopower/internal/core"
	"nopower/internal/experiments"
	"nopower/internal/metrics"
	"nopower/internal/model"
	"nopower/internal/obs"
	"nopower/internal/obs/prof"
	"nopower/internal/runner"
	"nopower/internal/sim"
	"nopower/internal/trace"
	"nopower/internal/tracegen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI; split from main for testability.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("npsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		modelName = fs.String("model", "BladeA", "hardware profile from the registry ("+strings.Join(model.Names(), ", ")+")")
		profiles  = fs.String("profiles", "", "heterogeneous fleet distribution, e.g. bladea:3,rack-2u-32:1 (overrides -model)")
		mix       = fs.String("mix", "180", "workload mix: 180, 60L, 60M, 60H, 60HH, 60HHH, aiburst")
		stack     = fs.String("stack", "coordinated", "controller stack preset")
		ticks     = fs.Int("ticks", experiments.DefaultTicks, "simulation length in ticks")
		seed      = fs.Int64("seed", 42, "trace/policy seed")
		budGrp    = fs.Float64("cap-grp", 0.20, "group budget headroom off max power")
		budEnc    = fs.Float64("cap-enc", 0.15, "enclosure budget headroom off max power")
		budLoc    = fs.Float64("cap-loc", 0.10, "local budget headroom off max power")
		pol       = fs.String("policy", "proportional", "EM/GM division policy")
		noOff     = fs.Bool("no-off", false, "forbid powering idle machines down")
		migTicks  = fs.Int("migration-ticks", 10, "migration penalty window")
		alphaM    = fs.Float64("alpha-m", 0.10, "migration performance overhead")
		series    = fs.String("series", "", "write a per-tick time-series CSV to this path")
		stride    = fs.Int("series-stride", 1, "record every Nth tick in the series")
		traceFile = fs.String("traces", "", "load workloads from a CSV (nptrace format) instead of generating -mix")
		timeout   = fs.Duration("timeout", 0, "cancel the simulation after this duration (0 = none)")
		verbose   = fs.Bool("v", false, "print scenario details")
		httpAddr  = fs.String("http", "", "serve /metrics, /healthz and /debug/pprof on this address for the run's duration (e.g. :8080)")
		traceOut  = fs.String("trace", "", "write controller actuation events as NDJSON to this path")
		chaosCase = fs.String("chaos", "", "inject a chaos scenario: "+strings.Join(experiments.ChaosCaseNames(), ", "))
		faultPol  = fs.String("fault-policy", "fail", "reaction to a controller panic: fail, degrade, propagate")
		ckptDir   = fs.String("checkpoint-dir", "", "write crash-safe snapshots into this directory")
		ckptEvery = fs.Int("checkpoint-every", 500, "checkpoint interval in ticks (with -checkpoint-dir)")
		resume    = fs.Bool("resume", false, "resume from the latest checkpoint in -checkpoint-dir; the other flags must match the checkpointed run")
		facility  = fs.Bool("facility", false, "co-simulate the facility (UPS/PDU losses, weather-derated cooling, PUE) with the FM budget above the GM")
		feedW     = fs.Float64("facility-feed", 0, "utility feed capacity in W (0 = sized to carry the operator budget on an average day)")
		shards    = fs.Int("shards", 1, "goroutines per simulation tick for the plant/EC advance (results are bit-identical at any value)")
		timeline  = fs.String("timeline", "", "write a Chrome trace-event timeline of the run's internal phases to this path (open in Perfetto)")
		tlCap     = fs.Int("timeline-cap", 0, "span ring capacity for -timeline (0 = default; oldest spans are overwritten when full)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	spec, err := core.SpecByName(*stack)
	if err != nil {
		fmt.Fprintf(stderr, "%v (stacks: %v)\n", err, core.StackNames())
		return 2
	}
	policy, err := sim.FaultPolicyByName(*faultPol)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	spec.Policy = *pol
	spec.AllowOff = spec.AllowOff && !*noOff
	spec.Shards = *shards
	if *facility {
		// The facility loop implies the cooling zone manager: the chiller
		// model is the thermal side of the same co-simulation.
		spec.EnableFacility, spec.EnableCooling = true, true
	}
	if *feedW != 0 {
		spec.FacilityFeedW = *feedW
	}

	if *profiles != "" {
		modelSet := false
		fs.Visit(func(f *flag.Flag) { modelSet = modelSet || f.Name == "model" })
		if modelSet {
			fmt.Fprintln(stderr, "-model and -profiles are mutually exclusive")
			return 2
		}
		// Canonicalize the spelling now so checkpoint labels (and resume
		// validation) don't depend on aliases or case.
		d, err := model.ParseDistribution(*profiles)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		*profiles, *modelName = d.String(), ""
	}

	sc := experiments.Scenario{
		Model:          *modelName,
		Profiles:       *profiles,
		Mix:            tracegen.Mix(*mix),
		Budgets:        experiments.Budgets{Grp: *budGrp, Enc: *budEnc, Loc: *budLoc},
		Ticks:          *ticks,
		Seed:           *seed,
		MigrationTicks: *migTicks,
		AlphaM:         *alphaM,
	}
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(stderr, "traces:", err)
			return 1
		}
		set, err := trace.ReadCSV(f, *traceFile)
		f.Close()
		if err != nil {
			fmt.Fprintln(stderr, "traces:", err)
			return 1
		}
		sc.Traces = set
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	logger := obs.NewLogger(stderr, 0)

	var o experiments.Observers
	if *httpAddr != "" {
		runner.RegisterMetrics(obs.Default)
		srv, err := obs.Serve(*httpAddr, obs.Default)
		if err != nil {
			fmt.Fprintln(stderr, "http:", err)
			return 1
		}
		defer srv.Close()
		o.Metrics = obs.Default
		logger.Info("observability endpoint up",
			"addr", srv.Addr.String(), "paths", "/metrics /healthz /debug/pprof/")
	}
	conflicts := obs.NewConflictDetector()
	var ndjson *obs.NDJSONWriter
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(stderr, "trace:", err)
			return 1
		}
		defer f.Close()
		ndjson = obs.NewNDJSONWriter(f)
		o.Tracer = obs.Multi(ndjson, conflicts)
	}

	if *series != "" {
		o.Series = &metrics.Series{Stride: *stride}
	}
	var profiler *prof.Profiler
	if *timeline != "" {
		profiler = prof.New(*tlCap)
		o.Prof = profiler
	}
	o.FaultPolicy = policy
	// Capture the FM handle (nil when the spec has no facility loop) for the
	// facility summary lines after the run.
	var fmc *fm.Controller
	o.OnBuild = func(h *core.Handles) { fmc = h.FM }

	// The run-identity labels stamped into checkpoints and validated on
	// resume: resuming under different settings would not be a continuation,
	// it would be a silently different simulation.
	labels := map[string]string{
		"model": *modelName, "profiles": *profiles, "mix": *mix, "ticks": fmt.Sprint(*ticks),
		"seed": fmt.Sprint(*seed), "stack": *stack, "policy": *pol,
		"chaos": *chaosCase, "series-stride": fmt.Sprint(*stride),
		"facility": fmt.Sprint(spec.EnableFacility),
	}
	if *ckptDir != "" {
		o.Checkpoint = &checkpoint.Saver{
			Dir: *ckptDir, Every: *ckptEvery,
			Meta:     checkpoint.Meta{Experiment: "npsim", Labels: labels},
			Registry: o.Metrics,
		}
	}
	if *resume {
		if *ckptDir == "" {
			fmt.Fprintln(stderr, "resume: -resume requires -checkpoint-dir")
			return 2
		}
		path, err := checkpoint.Latest(*ckptDir)
		if err != nil {
			fmt.Fprintln(stderr, "resume:", err)
			return 1
		}
		if path == "" {
			fmt.Fprintf(stderr, "resume: no checkpoint in %s\n", *ckptDir)
			return 1
		}
		f, err := checkpoint.Read(path)
		if err != nil {
			fmt.Fprintln(stderr, "resume:", err)
			return 1
		}
		for k, want := range labels {
			if got := f.Meta.Labels[k]; got != want {
				fmt.Fprintf(stderr, "resume: checkpoint %s was written with %s=%q, this run has %s=%q\n",
					path, k, got, k, want)
				return 2
			}
		}
		o.Resume = f
		logger.Info("resuming from checkpoint", "path", path, "tick", f.Meta.Tick)
	}
	var res metrics.Result
	var baseline float64
	disabled := -1
	if *chaosCase != "" {
		cse, err := experiments.ChaosCaseByName(*chaosCase)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		row, err := experiments.RunChaos(ctx, sc, spec, cse, o)
		if err != nil {
			fmt.Fprintln(stderr, "run:", err)
			return 1
		}
		res, disabled = row.Result, row.Disabled
	} else {
		baseline, err = experiments.BaselinePower(ctx, sc)
		if err != nil {
			fmt.Fprintln(stderr, "baseline:", err)
			return 1
		}
		res, err = experiments.RunObserved(ctx, sc, spec, baseline, o)
		if err != nil {
			fmt.Fprintln(stderr, "run:", err)
			return 1
		}
	}
	if o.Series != nil {
		f, err := os.Create(*series)
		if err != nil {
			fmt.Fprintln(stderr, "series:", err)
			return 1
		}
		if err := o.Series.WriteCSV(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "series:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "series:", err)
			return 1
		}
		logger.Info("series written", "samples", o.Series.Len(), "path", *series)
	}
	if profiler != nil {
		f, err := os.Create(*timeline)
		if err != nil {
			fmt.Fprintln(stderr, "timeline:", err)
			return 1
		}
		if err := profiler.WriteChromeTrace(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "timeline:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "timeline:", err)
			return 1
		}
		top := "none"
		if stats := profiler.PhaseStats(); len(stats) > 1 {
			// stats[0] is the enclosing sim.tick; the next entry is the
			// dominant sub-phase — the headline of "where did the tick go".
			top = fmt.Sprintf("%s=%s", stats[1].Phase, stats[1].Total)
		}
		logger.Info("timeline written", "spans", profiler.Len(),
			"dropped", profiler.Dropped(), "top", top, "path", *timeline)
	}
	if ndjson != nil {
		if err := ndjson.Err(); err != nil {
			fmt.Fprintln(stderr, "trace:", err)
			return 1
		}
		logger.Info("actuation trace written",
			"events", ndjson.Count(), "conflicts", conflicts.Count(), "path", *traceOut)
	}

	if *verbose {
		hw := "model=" + *modelName
		if *profiles != "" {
			hw = "profiles=" + *profiles
		}
		fmt.Fprintf(stdout, "scenario: %s mix=%s budgets=%s ticks=%d seed=%d stack=%s policy=%s\n",
			hw, *mix, sc.Budgets.Label(), *ticks, *seed, *stack, *pol)
		if *chaosCase != "" {
			fmt.Fprintf(stdout, "chaos: %s (fault policy %s)\n", *chaosCase, policy)
		} else {
			fmt.Fprintf(stdout, "baseline: %.0f W average (no power management)\n", baseline)
		}
	}
	fmt.Fprintf(stdout, "avg power      %8.0f W\n", res.AvgPower)
	fmt.Fprintf(stdout, "peak power     %8.0f W\n", res.PeakPower)
	fmt.Fprintf(stdout, "power savings  %8.1f %%\n", 100*res.PowerSavings)
	fmt.Fprintf(stdout, "perf loss      %8.1f %%\n", 100*res.PerfLoss)
	fmt.Fprintf(stdout, "viol SM        %8.2f %%\n", 100*res.ViolSM)
	fmt.Fprintf(stdout, "viol EM        %8.2f %%\n", 100*res.ViolEM)
	fmt.Fprintf(stdout, "viol GM        %8.2f %%\n", 100*res.ViolGM)
	fmt.Fprintf(stdout, "servers on     %8.1f\n", res.AvgServersOn)
	if fmc != nil {
		s := fmc.Sample()
		budget, feed := fmc.Budget()
		viol, _ := fmc.DrainViolations()
		fmt.Fprintf(stdout, "facility power %8.0f W\n", s.TotalW)
		fmt.Fprintf(stdout, "cooling power  %8.0f W\n", s.CoolingW)
		fmt.Fprintf(stdout, "PUE            %8.3f\n", s.PUE)
		fmt.Fprintf(stdout, "IT budget      %8.0f W  (feed %.0f W)\n", budget, feed)
		fmt.Fprintf(stdout, "feed viol      %8d ticks\n", viol)
	}
	if disabled >= 0 {
		fmt.Fprintf(stdout, "disabled ctrls %8d\n", disabled)
	}
	return 0
}
