package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestUnknownStack(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-stack", "bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown stack") {
		t.Errorf("stderr = %q", errOut.String())
	}
}

func TestSmallCoordinatedRun(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-mix", "60L", "-ticks", "600", "-v"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, frag := range []string{"baseline:", "avg power", "power savings", "servers on"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("output missing %q:\n%s", frag, out.String())
		}
	}
}

func TestSeriesFileWritten(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.csv")
	var out, errOut bytes.Buffer
	code := run([]string{"-mix", "60L", "-ticks", "300", "-series", path, "-series-stride", "50"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 7 { // header + 6 samples (ticks 0,50,...,250)
		t.Errorf("%d series lines", len(lines))
	}
}

func TestCustomTracesFlow(t *testing.T) {
	// Write a tiny trace file in the nptrace CSV format, then run on it.
	path := filepath.Join(t.TempDir(), "tr.csv")
	writeTinyTraces(t, path)
	var out, errOut bytes.Buffer
	code := run([]string{"-traces", path, "-ticks", "300", "-stack", "vmconly"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "avg power") {
		t.Error("metrics missing")
	}
	if code := run([]string{"-traces", "/nonexistent.csv"}, &out, &errOut); code != 1 {
		t.Errorf("missing trace file exit %d", code)
	}
}

func writeTinyTraces(t *testing.T, path string) {
	t.Helper()
	// 10 flat traces, 300 ticks, written in the nptrace CSV format.
	var b strings.Builder
	names := make([]string, 10)
	classes := make([]string, 10)
	for i := range names {
		names[i] = "w"
		classes[i] = "flat"
	}
	b.WriteString(strings.Join(names, ",") + "\n")
	b.WriteString(strings.Join(classes, ",") + "\n")
	for k := 0; k < 300; k++ {
		row := make([]string, 10)
		for i := range row {
			row[i] = "0.2"
		}
		b.WriteString(strings.Join(row, ",") + "\n")
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestChaosFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-mix", "60L", "-ticks", "300", "-chaos", "sm-crash",
		"-fault-policy", "degrade", "-v"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, frag := range []string{"chaos: sm-crash (fault policy degrade)", "disabled ctrls        1"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("output missing %q:\n%s", frag, out.String())
		}
	}

	// Without the degrade policy the injected crash fails the run.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-mix", "60L", "-ticks", "300", "-chaos", "sm-crash"}, &out, &errOut); code != 1 {
		t.Errorf("exit %d, want 1 (fault policy fail surfaces the panic)", code)
	}
	if !strings.Contains(errOut.String(), "injected crash") {
		t.Errorf("stderr = %q, want the injected-crash error", errOut.String())
	}

	if code := run([]string{"-chaos", "bogus"}, &out, &errOut); code != 2 {
		t.Errorf("unknown chaos case exit %d, want 2", code)
	}
	if code := run([]string{"-fault-policy", "bogus"}, &out, &errOut); code != 2 {
		t.Errorf("unknown fault policy exit %d, want 2", code)
	}
}

func TestTraceAndHTTPFlags(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.ndjson")
	var out, errOut bytes.Buffer
	code := run([]string{"-mix", "60L", "-ticks", "300", "-stack", "uncoordinated",
		"-trace", path, "-http", "127.0.0.1:0"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 100 {
		t.Errorf("only %d trace events", len(lines))
	}
	var ev struct {
		Tick       int     `json:"tick"`
		Controller string  `json:"controller"`
		Actuator   string  `json:"actuator"`
		New        float64 `json:"new"`
		Reason     string  `json:"reason"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("first event is not JSON: %v\n%s", err, lines[0])
	}
	if ev.Controller == "" || ev.Actuator == "" || ev.Reason == "" {
		t.Errorf("event missing fields: %+v", ev)
	}
	for _, frag := range []string{"observability endpoint up", "actuation trace written", "conflicts="} {
		if !strings.Contains(errOut.String(), frag) {
			t.Errorf("stderr missing %q:\n%s", frag, errOut.String())
		}
	}
}
