// Command npserved is the long-running multi-tenant run daemon: it accepts
// simulation jobs over a small HTTP/JSON API, multiplexes them over one
// worker pool, deduplicates identical specs through a shared result cache,
// and checkpoints every job so suspend/resume, memory-pressure eviction,
// and crash-safe restarts all work. See internal/serve for the API.
//
// Quick start:
//
//	npserved -addr :8080 -dir /var/lib/npserved &
//	curl -s -X POST localhost:8080/v1/jobs -d '{"mix":"60L","stack":"coordinated"}'
//	curl -s localhost:8080/v1/jobs/<id>/wait
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nopower/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "npserved:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; :0 picks a free port)")
		dir       = flag.String("dir", "", "durable job directory (empty = in-memory only: no resume, no restart recovery)")
		workers   = flag.Int("workers", 0, "run-pool workers (0 = GOMAXPROCS)")
		ckptEvery = flag.Int("checkpoint-every", 500, "ticks between periodic job checkpoints (<0 disables)")
		memHighMB = flag.Int("mem-high-mb", 0, "heap high watermark in MiB: above it, idle running jobs are evicted to their checkpoints (0 disables)")
		memLowMB  = flag.Int("mem-low-mb", 0, "heap low watermark in MiB: below it, evicted jobs resume")
	)
	flag.Parse()

	srv, err := serve.New(serve.Config{
		Dir:             *dir,
		Workers:         *workers,
		CheckpointEvery: *ckptEvery,
		MemHighBytes:    uint64(*memHighMB) << 20,
		MemLowBytes:     uint64(*memLowMB) << 20,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Close()
		return err
	}
	// The smoke harness (and anything scripting the daemon) parses this
	// line to learn the resolved port when -addr ends in :0.
	fmt.Printf("npserved listening on %s\n", ln.Addr())

	hsrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hsrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case got := <-sig:
		fmt.Printf("npserved shutting down (%s)\n", got)
	}

	// Stop taking requests first, then suspend the fleet: running jobs
	// checkpoint out and the job directory is the durable hand-off to the
	// next boot.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hsrv.Shutdown(ctx); err != nil {
		_ = hsrv.Close()
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		srv.Close()
		return err
	}
	return srv.Close()
}
