package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"nopower/internal/experiments"
	"nopower/internal/serve"
)

// TestServeSmoke is the end-to-end daemon gate (`make serve-smoke`): build
// the real binary, boot it on a free port, submit a job over HTTP, and
// check the wire result is bitwise identical to an in-process run — the
// cross-process face of the determinism contract — then shut it down with
// SIGTERM and expect a clean exit.
func TestServeSmoke(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "npserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-dir", filepath.Join(dir, "jobs"))
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cmd.Process.Kill() }()

	// The daemon announces its resolved address on the first stdout line.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no banner from daemon: %v", sc.Err())
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("unexpected banner %q", line)
	}
	base := "http://" + strings.TrimSpace(line[i+len(marker):])
	go func() { // drain the rest so the child never blocks on stdout
		for sc.Scan() {
		}
	}()

	spec := serve.JobSpec{Mix: "scale4", Ticks: 200, Seed: 12345}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var v serve.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(fmt.Sprintf("%s/v1/jobs/%s/wait?timeout=2m", base, v.ID))
	if err != nil {
		t.Fatal(err)
	}
	var final serve.View
	if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if final.Status != serve.StatusDone {
		t.Fatalf("job %s: %s (%s)", v.ID, final.Status, final.Error)
	}
	if final.Output == nil {
		t.Fatal("done job has no output")
	}

	cs, err := spec.CoreSpec()
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.Run(context.Background(), spec.Scenario(), cs)
	if err != nil {
		t.Fatal(err)
	}
	if final.Output.Result != want {
		t.Fatalf("daemon result diverges from in-process run:\n got %+v\nwant %+v", final.Output.Result, want)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}
